//! 2-D convolution: fused im2col+GEMM forward, direct reference, and
//! backward passes.
//!
//! The production path ([`conv2d`]) lowers patches with a contiguous-copy
//! [`im2col`], then runs one stride-aware GEMM per image directly into the
//! `NCHW` output buffer (`out[n] = W_mat · cols_nᵀ + bias`), with the bias
//! folded into the GEMM epilogue — there is no separate output-rearrange or
//! bias pass. Two reference implementations stay available for tests and
//! benchmarks: [`conv2d_direct`] (naive 7-loop) and [`conv2d_ref`] (the
//! seed's unfused im2col → matmul → rearrange pipeline).

use crate::ops::gemm;
use crate::{Tensor, TensorError};

/// Stride/padding configuration for [`conv2d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dCfg {
    /// Spatial stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl Default for Conv2dCfg {
    fn default() -> Self {
        Conv2dCfg {
            stride: 1,
            padding: 0,
        }
    }
}

/// Output spatial dimensions of a convolution.
///
/// Returns `(out_h, out_w)` for an `in_h x in_w` input with `kh x kw`
/// kernels under `cfg`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if the stride is zero or the
/// kernel does not fit in the padded input.
pub fn conv2d_out_dims(
    in_h: usize,
    in_w: usize,
    kh: usize,
    kw: usize,
    cfg: Conv2dCfg,
) -> Result<(usize, usize), TensorError> {
    if cfg.stride == 0 {
        return Err(TensorError::invalid("stride must be nonzero"));
    }
    let ph = in_h + 2 * cfg.padding;
    let pw = in_w + 2 * cfg.padding;
    if kh == 0 || kw == 0 || kh > ph || kw > pw {
        return Err(TensorError::invalid(format!(
            "kernel {kh}x{kw} does not fit padded input {ph}x{pw}"
        )));
    }
    Ok(((ph - kh) / cfg.stride + 1, (pw - kw) / cfg.stride + 1))
}

/// Number of output floats below which the copy-bound loops (im2col,
/// col2im, gradient transposes) stay serial: thread dispatch costs more
/// than the memcpy work itself.
const PARALLEL_COPY_FLOOR: usize = 1 << 16;

/// The intersection of the kernel's `kx` positions with the valid input
/// columns for an output column `ox`: returns `(kx_start, kx_end, ix_start)`
/// with `kx_end <= kx_start` meaning an empty run.
///
/// Shared with the PIM data path's receptive-field fill — the clipping
/// arithmetic is subtle (empty runs, padding wider than the kernel), so
/// there is exactly one copy of it.
#[inline]
pub fn kx_run(ox: usize, kw: usize, w: usize, cfg: Conv2dCfg) -> (usize, usize, usize) {
    let base = ox * cfg.stride; // ix = base + kx - padding
    let kx_start = cfg.padding.saturating_sub(base).min(kw);
    let kx_end = (w + cfg.padding).saturating_sub(base).min(kw).max(kx_start);
    // ix0 is meaningless (and unused) for empty runs; saturate to avoid
    // underflow when the whole kernel row falls in the padding.
    (
        kx_start,
        kx_end,
        (base + kx_start).saturating_sub(cfg.padding),
    )
}

/// Fills one output pixel's receptive field (`dst`, zeroing padding).
///
/// Copies the flattened `(ci, ky, kx)` vector a convolution at `(oy, ox)`
/// reads — from image `ni` of the NCHW buffer `xd` into `dst`, zeroing
/// padded positions first.
///
/// `dst` must hold `c_in * kh * kw` floats. Each in-bounds `kx` run is
/// copied as one contiguous slice. Shared between the conv lowering here
/// ([`im2col`] uses the copy core directly on its pre-zeroed rows) and the
/// PIM data path's input-buffer model (per-pixel and batched), so the
/// subtle padding/clipping arithmetic exists exactly once.
///
/// # Panics
///
/// Panics if `xd`/`dst` are shorter than the geometry implies.
#[allow(clippy::too_many_arguments)]
pub fn fill_receptive_field(
    xd: &[f32],
    c_in: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    ni: usize,
    oy: usize,
    ox: usize,
    cfg: Conv2dCfg,
    dst: &mut [f32],
) {
    dst.fill(0.0);
    copy_receptive_runs(xd, c_in, h, w, kh, kw, ni, oy, ox, cfg, dst);
}

/// The copy core of [`fill_receptive_field`]: writes only the in-bounds
/// `kx` runs, assuming `dst`'s padded positions are already zero.
#[allow(clippy::too_many_arguments)]
fn copy_receptive_runs(
    xd: &[f32],
    c_in: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    ni: usize,
    oy: usize,
    ox: usize,
    cfg: Conv2dCfg,
    dst: &mut [f32],
) {
    let (kx0, kx1, ix0) = kx_run(ox, kw, w, cfg);
    if kx1 <= kx0 {
        return;
    }
    let run = kx1 - kx0;
    for ci in 0..c_in {
        let plane = &xd[(ni * c_in + ci) * h * w..][..h * w];
        for ky in 0..kh {
            let iy = (oy * cfg.stride + ky) as isize - cfg.padding as isize;
            if iy < 0 || iy >= h as isize {
                continue;
            }
            let src = &plane[iy as usize * w + ix0..][..run];
            let dst_base = (ci * kh + ky) * kw + kx0;
            dst[dst_base..dst_base + run].copy_from_slice(src);
        }
    }
}

/// Lowers image patches to a matrix (`im2col`).
///
/// Input `(N, C, H, W)` becomes a matrix of shape
/// `(N*OH*OW, C*KH*KW)` whose rows are flattened receptive fields. This is
/// the same lowering a PIM accelerator performs when feeding word lines: each
/// row is one crossbar input vector.
///
/// The inner loop copies each in-bounds `kx` run as one contiguous slice,
/// and rows are filled in parallel for large problems.
///
/// # Errors
///
/// Propagates geometry errors from [`conv2d_out_dims`] and rank errors.
pub fn im2col(x: &Tensor, kh: usize, kw: usize, cfg: Conv2dCfg) -> Result<Tensor, TensorError> {
    if x.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: x.rank(),
            op: "im2col",
        });
    }
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (oh, ow) = conv2d_out_dims(h, w, kh, kw, cfg)?;
    let rows = n * oh * ow;
    let cols = c * kh * kw;
    let mut out = vec![0.0f32; rows * cols];
    // `out` is freshly zeroed, so the fill core can skip re-zeroing.
    im2col_fill(
        x.data(),
        (n, c, h, w),
        (kh, kw),
        (oh, ow),
        cfg,
        false,
        &mut out,
    );
    Tensor::from_vec(out, &[rows, cols])
}

/// The fill core shared by [`im2col`] and [`conv2d_into`]: lowers patches
/// into `out` (`n*oh*ow` rows of `c*kh*kw`). `zero_first` re-zeroes each
/// chunk before filling, for reused (arena) destinations whose padded
/// positions may hold stale values.
fn im2col_fill(
    xd: &[f32],
    (n, c, h, w): (usize, usize, usize, usize),
    (kh, kw): (usize, usize),
    (oh, ow): (usize, usize),
    cfg: Conv2dCfg,
    zero_first: bool,
    out: &mut [f32],
) {
    let rows = n * oh * ow;
    let cols = c * kh * kw;

    // One chunk = all rows of one output scanline (ni, oy): big enough to
    // amortize dispatch, small enough to balance.
    let fill_rows = |row0: usize, chunk: &mut [f32]| {
        if zero_first {
            chunk.fill(0.0);
        }
        for (r, orow) in chunk.chunks_mut(cols).enumerate() {
            let row = row0 + r;
            let ox = row % ow;
            let oy = (row / ow) % oh;
            let ni = row / (oh * ow);
            // Rows start zeroed and are written exactly once, so the copy
            // core can skip the per-row zeroing.
            copy_receptive_runs(xd, c, h, w, kh, kw, ni, oy, ox, cfg, orow);
        }
    };

    // Below the copy floor, one chunk == fully serial (no thread dispatch).
    let chunk_rows = if rows * cols < PARALLEL_COPY_FLOOR {
        rows.max(1)
    } else {
        ow.max(1)
    };
    epim_parallel::for_each_chunk_mut(&mut out[..rows * cols], chunk_rows * cols, |ci, chunk| {
        fill_rows(ci * chunk_rows, chunk);
    });
}

/// Accumulates an im2col matrix back into image space (`col2im`).
///
/// The adjoint of [`im2col`]: overlapping patch positions are summed. Used
/// by [`conv2d_backward`] to form input gradients. Parallelized over
/// `(image, channel)` output planes, which are disjoint.
///
/// # Errors
///
/// Returns geometry errors if `cols` does not match the implied shape.
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    cols_mat: &Tensor,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    cfg: Conv2dCfg,
) -> Result<Tensor, TensorError> {
    let (oh, ow) = conv2d_out_dims(h, w, kh, kw, cfg)?;
    let rows = n * oh * ow;
    let cols = c * kh * kw;
    if cols_mat.shape() != [rows, cols] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![rows, cols],
            actual: cols_mat.shape().to_vec(),
            op: "col2im",
        });
    }
    let mut out = Tensor::zeros(&[n, c, h, w]);
    let cd = cols_mat.data();
    // Each (ni, ci) output plane accumulates only from its own column block,
    // so planes parallelize without synchronization.
    let total = out.len();
    let accumulate_plane = |plane_idx: usize, plane: &mut [f32]| {
        let ni = plane_idx / c;
        let ci = plane_idx % c;
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (ni * oh + oy) * ow + ox;
                let (kx0, kx1, ix0) = kx_run(ox, kw, w, cfg);
                if kx1 <= kx0 {
                    continue;
                }
                let run = kx1 - kx0;
                for ky in 0..kh {
                    let iy = (oy * cfg.stride + ky) as isize - cfg.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let col = (ci * kh + ky) * kw + kx0;
                    let src = &cd[row * cols + col..row * cols + col + run];
                    let dst = &mut plane[iy as usize * w + ix0..iy as usize * w + ix0 + run];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += s;
                    }
                }
            }
        }
    };
    if total < PARALLEL_COPY_FLOOR {
        for (idx, plane) in out.data_mut().chunks_mut(h * w).enumerate() {
            accumulate_plane(idx, plane);
        }
    } else {
        epim_parallel::for_each_chunk_mut(out.data_mut(), h * w, accumulate_plane);
    }
    Ok(out)
}

fn check_conv_operands(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
) -> Result<(), TensorError> {
    if x.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: x.rank(),
            op: "conv2d",
        });
    }
    if weight.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: weight.rank(),
            op: "conv2d",
        });
    }
    let c_in = x.shape()[1];
    let (c_out, wc_in) = (weight.shape()[0], weight.shape()[1]);
    if wc_in != c_in {
        return Err(TensorError::ShapeMismatch {
            expected: vec![c_in],
            actual: vec![wc_in],
            op: "conv2d (input channels)",
        });
    }
    if let Some(b) = bias {
        if b.shape() != [c_out] {
            return Err(TensorError::ShapeMismatch {
                expected: vec![c_out],
                actual: b.shape().to_vec(),
                op: "conv2d (bias)",
            });
        }
    }
    Ok(())
}

/// 2-D convolution (cross-correlation, as in every DL framework).
///
/// `x` is `(N, C_in, H, W)`, `weight` is `(C_out, C_in, KH, KW)`, `bias`
/// (optional) is `(C_out)`. Returns `(N, C_out, OH, OW)`.
///
/// Implemented as `im2col` followed by one stride-aware GEMM per image that
/// writes **directly into the `NCHW` output layout** with the bias folded
/// into the GEMM epilogue: `out[n] (C_out x OH*OW) = W_mat · cols_nᵀ + b`.
/// Unlike the seed implementation there is no second rearrange pass over
/// the output and no per-pixel bias lookup.
///
/// # Errors
///
/// Returns rank/shape errors if operands disagree or the geometry is
/// invalid.
pub fn conv2d(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    cfg: Conv2dCfg,
) -> Result<Tensor, TensorError> {
    check_conv_operands(x, weight, bias)?;
    let (n, c_in, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (c_out, kh, kw) = (weight.shape()[0], weight.shape()[2], weight.shape()[3]);
    let (oh, ow) = conv2d_out_dims(h, w, kh, kw, cfg)?;

    let cols = im2col(x, kh, kw, cfg)?; // (N*OH*OW, C_in*KH*KW)
    let ckk = c_in * kh * kw;
    let pixels = oh * ow;
    let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
    // One batched call over all N images: each image's `cols` block is the
    // (transposed, never materialized) B operand and its `NCHW` plane block
    // the output. Per-image results are bit-identical to N separate GEMM
    // calls — the batching only folds N dispatches into one, which is what
    // keeps small feature maps from paying N× dispatch overhead.
    gemm::gemm_nt_batch(
        n,
        c_out,
        pixels,
        ckk,
        weight.data(),
        cols.data(),
        bias.map(Tensor::data),
        false,
        out.data_mut(),
    );
    Ok(out)
}

/// Slice-based [`conv2d`] with an optional fused ReLU epilogue, for
/// arena-backed executors that own both the activation storage and the
/// im2col scratch.
///
/// `xd` holds an `(n, c_in, h, w)` NCHW image block, `cols` is im2col
/// scratch of at least `n*oh*ow * c_in*kh*kw` floats (stale contents are
/// fine — it is re-zeroed), and `out` receives the `(n, c_out, oh, ow)`
/// result. With `relu` set, every output element is clamped via the GEMM
/// kernels' fused epilogue — bit-identical to [`conv2d`] followed by a
/// separate elementwise ReLU.
///
/// # Errors
///
/// Returns rank/shape errors if operands disagree, the geometry is
/// invalid, or a slice is too short.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_into(
    xd: &[f32],
    (n, c_in, h, w): (usize, usize, usize, usize),
    weight: &Tensor,
    bias: Option<&Tensor>,
    cfg: Conv2dCfg,
    relu: bool,
    cols: &mut [f32],
    out: &mut [f32],
) -> Result<(), TensorError> {
    if weight.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: weight.rank(),
            op: "conv2d_into",
        });
    }
    let (c_out, wc_in, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    if wc_in != c_in {
        return Err(TensorError::ShapeMismatch {
            expected: vec![c_in],
            actual: vec![wc_in],
            op: "conv2d_into (input channels)",
        });
    }
    if let Some(b) = bias {
        if b.shape() != [c_out] {
            return Err(TensorError::ShapeMismatch {
                expected: vec![c_out],
                actual: b.shape().to_vec(),
                op: "conv2d_into (bias)",
            });
        }
    }
    let (oh, ow) = conv2d_out_dims(h, w, kh, kw, cfg)?;
    if xd.len() < n * c_in * h * w {
        return Err(TensorError::invalid("conv2d_into: input slice too short"));
    }
    let ckk = c_in * kh * kw;
    let rows = n * oh * ow;
    let pixels = oh * ow;
    if cols.len() < rows * ckk {
        return Err(TensorError::invalid("conv2d_into: scratch slice too short"));
    }
    if out.len() < n * c_out * pixels {
        return Err(TensorError::invalid("conv2d_into: output slice too short"));
    }
    im2col_fill(
        xd,
        (n, c_in, h, w),
        (kh, kw),
        (oh, ow),
        cfg,
        true,
        &mut cols[..rows * ckk],
    );
    gemm::gemm_nt_batch(
        n,
        c_out,
        pixels,
        ckk,
        weight.data(),
        &cols[..rows * ckk],
        bias.map(Tensor::data),
        relu,
        &mut out[..n * c_out * pixels],
    );
    Ok(())
}

/// The seed's unfused convolution pipeline (im2col → matmul → rearrange),
/// kept as a cross-check for the fused path and as the benchmark baseline.
///
/// The per-channel bias lookup is hoisted out of the pixel loop (the seed
/// resolved `bias[co]` once per output *pixel*).
///
/// # Errors
///
/// Same contract as [`conv2d`].
pub fn conv2d_ref(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    cfg: Conv2dCfg,
) -> Result<Tensor, TensorError> {
    check_conv_operands(x, weight, bias)?;
    let (n, c_in, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (c_out, kh, kw) = (weight.shape()[0], weight.shape()[2], weight.shape()[3]);
    let (oh, ow) = conv2d_out_dims(h, w, kh, kw, cfg)?;
    let cols = im2col(x, kh, kw, cfg)?;
    let wmat = weight.reshape(&[c_out, c_in * kh * kw])?;
    let out_mat = cols.matmul(&wmat.transpose()?)?; // (N*OH*OW, C_out)

    // Rearrange (N*OH*OW, C_out) -> (N, C_out, OH, OW), adding bias.
    let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
    let od = out.data_mut();
    let md = out_mat.data();
    for ni in 0..n {
        for co in 0..c_out {
            // Hoisted: one bias resolve per (image, channel) plane.
            let b = bias.map(|bb| bb.data()[co]).unwrap_or(0.0);
            let plane = &mut od[(ni * c_out + co) * oh * ow..(ni * c_out + co + 1) * oh * ow];
            for (p, slot) in plane.iter_mut().enumerate() {
                let row = ni * oh * ow + p;
                *slot = md[row * c_out + co] + b;
            }
        }
    }
    Ok(out)
}

/// Naive 7-loop direct convolution — the ground-truth reference for
/// property tests (no im2col, no GEMM, f32 accumulation in source order).
///
/// # Errors
///
/// Same contract as [`conv2d`].
pub fn conv2d_direct(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    cfg: Conv2dCfg,
) -> Result<Tensor, TensorError> {
    check_conv_operands(x, weight, bias)?;
    let (n, c_in, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (c_out, kh, kw) = (weight.shape()[0], weight.shape()[2], weight.shape()[3]);
    let (oh, ow) = conv2d_out_dims(h, w, kh, kw, cfg)?;
    let out = Tensor::from_fn(&[n, c_out, oh, ow], |idx| {
        let (ni, co, oy, ox) = (idx[0], idx[1], idx[2], idx[3]);
        let mut acc = bias.map(|bb| bb.data()[co]).unwrap_or(0.0);
        for ci in 0..c_in {
            for ky in 0..kh {
                for kx in 0..kw {
                    let iy = (oy * cfg.stride + ky) as isize - cfg.padding as isize;
                    let ix = (ox * cfg.stride + kx) as isize - cfg.padding as isize;
                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                        continue;
                    }
                    acc += x.at(&[ni, ci, iy as usize, ix as usize]) * w_at(weight, co, ci, ky, kx);
                }
            }
        }
        acc
    });
    Ok(out)
}

#[inline]
fn w_at(weight: &Tensor, co: usize, ci: usize, ky: usize, kx: usize) -> f32 {
    let s = weight.shape();
    weight.data()[((co * s[1] + ci) * s[2] + ky) * s[3] + kx]
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input, `(N, C_in, H, W)`.
    pub dx: Tensor,
    /// Gradient w.r.t. the weight, `(C_out, C_in, KH, KW)`.
    pub dw: Tensor,
    /// Gradient w.r.t. the bias, `(C_out)`.
    pub db: Tensor,
}

/// Backward pass of [`conv2d`].
///
/// `dy` is the upstream gradient `(N, C_out, OH, OW)`. All three products
/// run on the stride-aware GEMM kernels: `dW = dY_matᵀ · cols` uses
/// [`gemm::gemm_tn`] on the *pixel-major* gradient without materializing
/// either transpose.
///
/// # Errors
///
/// Returns rank/shape errors if operands disagree with the forward geometry.
pub fn conv2d_backward(
    x: &Tensor,
    weight: &Tensor,
    dy: &Tensor,
    cfg: Conv2dCfg,
) -> Result<Conv2dGrads, TensorError> {
    let (n, c_in, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (c_out, _, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    let (oh, ow) = conv2d_out_dims(h, w, kh, kw, cfg)?;
    if dy.shape() != [n, c_out, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, c_out, oh, ow],
            actual: dy.shape().to_vec(),
            op: "conv2d_backward",
        });
    }
    let pixels = oh * ow;
    let rows = n * pixels;

    // dY as pixel-major matrix (N*OH*OW, C_out): transpose each image's
    // (C_out, OH*OW) plane with contiguous reads.
    let mut dy_mat = vec![0.0f32; rows * c_out];
    {
        let yd = dy.data();
        let transpose_image = |ni: usize, chunk: &mut [f32]| {
            for co in 0..c_out {
                let src = &yd[(ni * c_out + co) * pixels..(ni * c_out + co + 1) * pixels];
                for (p, &v) in src.iter().enumerate() {
                    chunk[p * c_out + co] = v;
                }
            }
        };
        if dy_mat.len() < PARALLEL_COPY_FLOOR {
            for (ni, chunk) in dy_mat.chunks_mut(pixels * c_out).enumerate() {
                transpose_image(ni, chunk);
            }
        } else {
            epim_parallel::for_each_chunk_mut(&mut dy_mat, pixels * c_out, transpose_image);
        }
    }

    let cols = im2col(x, kh, kw, cfg)?; // (R, C_in*KH*KW)
    let ckk = c_in * kh * kw;

    // dW = dY_matᵀ · cols -> (C_out, C_in*KH*KW), no explicit transpose.
    let mut dw_mat = vec![0.0f32; c_out * ckk];
    gemm::gemm_tn(c_out, ckk, rows, &dy_mat, cols.data(), &mut dw_mat);
    let dw = Tensor::from_vec(dw_mat, &[c_out, c_in, kh, kw])?;

    // db = column sums of dY_mat (row-wise accumulation vectorizes).
    let mut db = Tensor::zeros(&[c_out]);
    {
        let bd = db.data_mut();
        for row in dy_mat.chunks(c_out) {
            for (b, &v) in bd.iter_mut().zip(row) {
                *b += v;
            }
        }
    }

    // dX: dcols = dY_mat · W_mat, then col2im.
    let mut dcols = vec![0.0f32; rows * ckk];
    gemm::gemm(rows, ckk, c_out, &dy_mat, weight.data(), &mut dcols);
    let dcols = Tensor::from_vec(dcols, &[rows, ckk])?;
    let dx = col2im(&dcols, n, c_in, h, w, kh, kw, cfg)?;

    Ok(Conv2dGrads { dx, dw, db })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn direct_conv(x: &Tensor, w: &Tensor, cfg: Conv2dCfg) -> Tensor {
        conv2d_direct(x, w, None, cfg).expect("valid geometry")
    }

    #[test]
    fn out_dims_basic() {
        assert_eq!(
            conv2d_out_dims(
                8,
                8,
                3,
                3,
                Conv2dCfg {
                    stride: 1,
                    padding: 1
                }
            )
            .unwrap(),
            (8, 8)
        );
        assert_eq!(
            conv2d_out_dims(
                8,
                8,
                3,
                3,
                Conv2dCfg {
                    stride: 2,
                    padding: 1
                }
            )
            .unwrap(),
            (4, 4)
        );
        assert_eq!(
            conv2d_out_dims(7, 7, 1, 1, Conv2dCfg::default()).unwrap(),
            (7, 7)
        );
        assert!(conv2d_out_dims(4, 4, 5, 5, Conv2dCfg::default()).is_err());
        assert!(conv2d_out_dims(
            4,
            4,
            3,
            3,
            Conv2dCfg {
                stride: 0,
                padding: 0
            }
        )
        .is_err());
    }

    #[test]
    fn conv_matches_direct_reference() {
        let mut r = crate::rng::seeded(11);
        let x = crate::init::uniform(&[2, 3, 7, 7], -1.0, 1.0, &mut r);
        let w = crate::init::uniform(&[4, 3, 3, 3], -1.0, 1.0, &mut r);
        for cfg in [
            Conv2dCfg {
                stride: 1,
                padding: 0,
            },
            Conv2dCfg {
                stride: 1,
                padding: 1,
            },
            Conv2dCfg {
                stride: 2,
                padding: 1,
            },
        ] {
            let got = conv2d(&x, &w, None, cfg).unwrap();
            let want = direct_conv(&x, &w, cfg);
            assert!(got.allclose(&want, 1e-4).unwrap(), "cfg {cfg:?}");
        }
    }

    #[test]
    fn fused_matches_unfused_reference_with_bias() {
        let mut r = crate::rng::seeded(12);
        let x = crate::init::uniform(&[2, 3, 9, 7], -1.0, 1.0, &mut r);
        let w = crate::init::uniform(&[5, 3, 3, 3], -1.0, 1.0, &mut r);
        let b = crate::init::uniform(&[5], -1.0, 1.0, &mut r);
        for cfg in [
            Conv2dCfg {
                stride: 1,
                padding: 0,
            },
            Conv2dCfg {
                stride: 1,
                padding: 1,
            },
            Conv2dCfg {
                stride: 2,
                padding: 1,
            },
            Conv2dCfg {
                stride: 2,
                padding: 0,
            },
        ] {
            let fused = conv2d(&x, &w, Some(&b), cfg).unwrap();
            let unfused = conv2d_ref(&x, &w, Some(&b), cfg).unwrap();
            assert!(fused.allclose(&unfused, 1e-4).unwrap(), "cfg {cfg:?}");
        }
    }

    #[test]
    fn batched_images_bit_identical_to_per_image() {
        // The multi-image GEMM batching must be invisible: convolving a
        // stacked (N, C, H, W) batch equals convolving each image alone,
        // bitwise. This is what lets the network pipeline stack whole
        // request groups through dense stages.
        let mut r = crate::rng::seeded(51);
        for &(n, c_in, c_out, hw) in &[
            (2usize, 3usize, 4usize, 6usize),
            (16, 8, 16, 7),
            (5, 4, 32, 12),
        ] {
            let x = crate::init::uniform(&[n, c_in, hw, hw], -1.0, 1.0, &mut r);
            let w = crate::init::uniform(&[c_out, c_in, 3, 3], -1.0, 1.0, &mut r);
            let b = crate::init::uniform(&[c_out], -1.0, 1.0, &mut r);
            let cfg = Conv2dCfg {
                stride: 1,
                padding: 1,
            };
            let stacked = conv2d(&x, &w, Some(&b), cfg).unwrap();
            let plane = c_in * hw * hw;
            for ni in 0..n {
                let xi = Tensor::from_vec(
                    x.data()[ni * plane..(ni + 1) * plane].to_vec(),
                    &[1, c_in, hw, hw],
                )
                .unwrap();
                let yi = conv2d(&xi, &w, Some(&b), cfg).unwrap();
                let oplane = yi.len();
                assert_eq!(
                    &stacked.data()[ni * oplane..(ni + 1) * oplane],
                    yi.data(),
                    "image {ni} of {n} diverged under batching"
                );
            }
        }
    }

    #[test]
    fn conv2d_into_bit_identical_and_fuses_relu() {
        // The slice-based entry (stale scratch, stale output) must match
        // the allocating path bitwise, and its fused ReLU must match a
        // separate ReLU pass bitwise.
        let mut r = crate::rng::seeded(61);
        for &(n, c_in, c_out, hw, stride, padding) in &[
            (1usize, 2usize, 3usize, 5usize, 1usize, 0usize),
            (2, 3, 4, 7, 1, 1),
            (3, 4, 8, 9, 2, 1),
        ] {
            let x = crate::init::uniform(&[n, c_in, hw, hw], -1.0, 1.0, &mut r);
            let w = crate::init::uniform(&[c_out, c_in, 3, 3], -1.0, 1.0, &mut r);
            let b = crate::init::uniform(&[c_out], -1.0, 1.0, &mut r);
            let cfg = Conv2dCfg { stride, padding };
            let want = conv2d(&x, &w, Some(&b), cfg).unwrap();
            let (oh, ow) = conv2d_out_dims(hw, hw, 3, 3, cfg).unwrap();
            let scratch_len = n * oh * ow * c_in * 9;
            let out_len = n * c_out * oh * ow;
            let dims = (n, c_in, hw, hw);

            let mut cols = vec![f32::NAN; scratch_len];
            let mut out = vec![f32::NAN; out_len];
            conv2d_into(
                x.data(),
                dims,
                &w,
                Some(&b),
                cfg,
                false,
                &mut cols,
                &mut out,
            )
            .unwrap();
            assert_eq!(out, want.data(), "unfused into-path diverged");

            let mut relu_want = want.clone();
            for v in relu_want.data_mut() {
                *v = v.max(0.0);
            }
            cols.fill(f32::NAN);
            out.fill(f32::NAN);
            conv2d_into(x.data(), dims, &w, Some(&b), cfg, true, &mut cols, &mut out).unwrap();
            assert_eq!(out, relu_want.data(), "fused relu diverged");
        }
    }

    #[test]
    fn conv_bias_added_per_channel() {
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let w = Tensor::zeros(&[2, 1, 1, 1]);
        let b = Tensor::from_vec(vec![1.5, -2.0], &[2]).unwrap();
        let y = conv2d(&x, &w, Some(&b), Conv2dCfg::default()).unwrap();
        for oy in 0..3 {
            for ox in 0..3 {
                assert_eq!(y.at(&[0, 0, oy, ox]), 1.5);
                assert_eq!(y.at(&[0, 1, oy, ox]), -2.0);
            }
        }
    }

    #[test]
    fn conv_rejects_channel_mismatch() {
        let x = Tensor::zeros(&[1, 3, 5, 5]);
        let w = Tensor::zeros(&[2, 4, 3, 3]);
        assert!(conv2d(&x, &w, None, Conv2dCfg::default()).is_err());
        assert!(conv2d_ref(&x, &w, None, Conv2dCfg::default()).is_err());
        assert!(conv2d_direct(&x, &w, None, Conv2dCfg::default()).is_err());
    }

    #[test]
    fn im2col_col2im_adjointness() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property.
        let mut r = crate::rng::seeded(21);
        let cfg = Conv2dCfg {
            stride: 2,
            padding: 1,
        };
        let x = crate::init::uniform(&[1, 2, 6, 6], -1.0, 1.0, &mut r);
        let cols = im2col(&x, 3, 3, cfg).unwrap();
        let y = crate::init::uniform(cols.shape(), -1.0, 1.0, &mut r);
        let lhs: f32 = cols.mul(&y).unwrap().sum();
        let back = col2im(&y, 1, 2, 6, 6, 3, 3, cfg).unwrap();
        let rhs: f32 = x.mul(&back).unwrap().sum();
        assert!((lhs - rhs).abs() < 1e-3, "lhs {lhs} rhs {rhs}");
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut r = crate::rng::seeded(31);
        let cfg = Conv2dCfg {
            stride: 1,
            padding: 1,
        };
        let x = crate::init::uniform(&[1, 2, 5, 5], -1.0, 1.0, &mut r);
        let w = crate::init::uniform(&[3, 2, 3, 3], -1.0, 1.0, &mut r);
        let y = conv2d(&x, &w, None, cfg).unwrap();
        // Loss = sum(y^2)/2, so dy = y.
        let grads = conv2d_backward(&x, &w, &y, cfg).unwrap();

        let eps = 1e-2f32;
        let loss =
            |x: &Tensor, w: &Tensor| -> f32 { conv2d(x, w, None, cfg).unwrap().norm_sq() / 2.0 };
        // Check several weight coordinates.
        for &flat in &[0usize, 7, 23, 53] {
            let mut wp = w.clone();
            wp.data_mut()[flat] += eps;
            let mut wm = w.clone();
            wm.data_mut()[flat] -= eps;
            let fd = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            let an = grads.dw.data()[flat];
            assert!(
                (fd - an).abs() < 0.05 * (1.0 + an.abs()),
                "dw[{flat}] fd {fd} an {an}"
            );
        }
        // Check input coordinates.
        for &flat in &[0usize, 11, 29, 49] {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let fd = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            let an = grads.dx.data()[flat];
            assert!(
                (fd - an).abs() < 0.05 * (1.0 + an.abs()),
                "dx[{flat}] fd {fd} an {an}"
            );
        }
    }

    #[test]
    fn backward_bias_is_spatial_sum() {
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let w = Tensor::ones(&[2, 1, 3, 3]);
        let cfg = Conv2dCfg {
            stride: 1,
            padding: 0,
        };
        let dy = Tensor::ones(&[1, 2, 2, 2]);
        let g = conv2d_backward(&x, &w, &dy, cfg).unwrap();
        assert_eq!(g.db.data(), &[4.0, 4.0]);
    }

    #[test]
    fn conv_1x1_is_channel_mixing() {
        // 1x1 conv == per-pixel linear map over channels.
        let x = Tensor::from_fn(&[1, 2, 2, 2], |i| (i[1] + 1) as f32);
        let w = Tensor::from_vec(vec![1.0, 2.0], &[1, 2, 1, 1]).unwrap();
        let y = conv2d(&x, &w, None, Conv2dCfg::default()).unwrap();
        // Every pixel: 1*1 + 2*2 = 5.
        for v in y.data() {
            assert_eq!(*v, 5.0);
        }
    }

    #[test]
    fn large_padding_fully_clipped_rows() {
        // Padding bigger than the kernel produces border rows whose kx runs
        // are empty; both paths must agree (regression for the run math).
        let mut r = crate::rng::seeded(41);
        let x = crate::init::uniform(&[1, 2, 5, 5], -1.0, 1.0, &mut r);
        let w = crate::init::uniform(&[3, 2, 2, 2], -1.0, 1.0, &mut r);
        let cfg = Conv2dCfg {
            stride: 1,
            padding: 3,
        };
        let got = conv2d(&x, &w, None, cfg).unwrap();
        let want = direct_conv(&x, &w, cfg);
        assert!(got.allclose(&want, 1e-4).unwrap());
    }
}
