//! Activation functions.

use crate::{Tensor, TensorError};

/// Rectified linear unit, elementwise.
pub fn relu(x: &Tensor) -> Tensor {
    x.map(|v| v.max(0.0))
}

/// Backward pass of [`relu`]: passes gradient where the input was positive.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `x` and `dy` differ in shape.
pub fn relu_backward(x: &Tensor, dy: &Tensor) -> Result<Tensor, TensorError> {
    x.zip(dy, |xv, g| if xv > 0.0 { g } else { 0.0 })
}

/// Logistic sigmoid, elementwise.
pub fn sigmoid(x: &Tensor) -> Tensor {
    x.map(|v| 1.0 / (1.0 + (-v).exp()))
}

/// Row-wise softmax of a `(N, K)` matrix, numerically stabilized.
///
/// # Errors
///
/// Returns a rank error for non-matrices.
pub fn softmax_rows(x: &Tensor) -> Result<Tensor, TensorError> {
    if x.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: x.rank(),
            op: "softmax",
        });
    }
    let (n, k) = (x.shape()[0], x.shape()[1]);
    let mut out = x.clone();
    let od = out.data_mut();
    for i in 0..n {
        let row = &mut od[i * k..(i + 1) * k];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            z += *v;
        }
        for v in row.iter_mut() {
            *v /= z;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negative() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_gates_gradient() {
        let x = Tensor::from_vec(vec![-1.0, 0.5], &[2]).unwrap();
        let dy = Tensor::from_vec(vec![3.0, 3.0], &[2]).unwrap();
        assert_eq!(relu_backward(&x, &dy).unwrap().data(), &[0.0, 3.0]);
    }

    #[test]
    fn sigmoid_bounds_and_midpoint() {
        let x = Tensor::from_vec(vec![-100.0, 0.0, 100.0], &[3]).unwrap();
        let y = sigmoid(&x);
        assert!(y.data()[0] < 1e-6);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data()[2] > 1.0 - 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], &[2, 3]).unwrap();
        let y = softmax_rows(&x).unwrap();
        for i in 0..2 {
            let s: f32 = y.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // Large-logit row stays finite (stabilization works).
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_monotone_in_logits() {
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0], &[1, 3]).unwrap();
        let y = softmax_rows(&x).unwrap();
        assert!(y.data()[0] < y.data()[1] && y.data()[1] < y.data()[2]);
    }
}
