//! Activation functions and the vectorized elementwise kernels behind the
//! fused serving stages.
//!
//! The serving pipeline's standalone `Relu`/`Add` stages, the fused
//! `Add → Relu` kernel and the row-wise softmax bottom out in generic
//! [`epim_simd::SimdOp`] bodies here, monomorphized per ISA (AVX-512F,
//! AVX2+FMA, scalar) by the shared `epim-simd` dispatcher — the same
//! framework behind the GEMM micro-kernel selection, the pooling kernels
//! and `epim_pim`'s quantizer.
//!
//! **Bit-exactness.** The graph-fusion invariant (fused programs bitwise
//! equal to the unfused reference) requires every arm of a kernel to agree
//! bitwise. Addition is the same IEEE op in scalar and vector form; the
//! relu clamp uses [`Simd::max`]`(v, 0.0)`, whose tie/NaN semantics are
//! pinned by the trait (`-0.0` maps to `+0.0` and `NaN` to `0.0` in every
//! arm). Softmax keeps its reductions (row max, normalizer sum) scalar in
//! index order — the house invariant vectorizes across independent
//! outputs, never inside an FP reduction — while the exp and divide
//! passes are elementwise and use the shared lanewise [`epim_simd::math::exp`],
//! which is bitwise identical across arms by construction.

use crate::{Tensor, TensorError};
use epim_simd::{dispatch, math, ScalarSimd, Simd, SimdOp};

/// Rectified linear unit, elementwise.
pub fn relu(x: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(x.shape());
    relu_slice(x.data(), out.data_mut());
    out
}

/// Backward pass of [`relu`]: passes gradient where the input was positive.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `x` and `dy` differ in shape.
pub fn relu_backward(x: &Tensor, dy: &Tensor) -> Result<Tensor, TensorError> {
    x.zip(dy, |xv, g| if xv > 0.0 { g } else { 0.0 })
}

/// Logistic sigmoid, elementwise.
pub fn sigmoid(x: &Tensor) -> Tensor {
    x.map(|v| 1.0 / (1.0 + (-v).exp()))
}

/// `dst[i] = max(src[i], 0.0)`; every ISA arm agrees bitwise.
///
/// # Panics
///
/// Panics if `src` and `dst` lengths differ.
pub fn relu_slice(src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "relu_slice length mismatch");
    dispatch(ReluOp { src, dst });
}

/// `dst[i] = a[i] + b[i]` (the residual-shortcut add).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn add_slice(a: &[f32], b: &[f32], dst: &mut [f32]) {
    assert_eq!(a.len(), dst.len(), "add_slice length mismatch");
    assert_eq!(b.len(), dst.len(), "add_slice length mismatch");
    dispatch(AddOp { a, b, dst });
}

/// `dst[i] = max(a[i] + b[i], 0.0)` in one traversal — the fused
/// `Add → Relu` stage. Bit-identical to [`add_slice`] followed by
/// [`relu_slice`].
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn add_relu_slice(a: &[f32], b: &[f32], dst: &mut [f32]) {
    assert_eq!(a.len(), dst.len(), "add_relu_slice length mismatch");
    assert_eq!(b.len(), dst.len(), "add_relu_slice length mismatch");
    dispatch(AddReluOp { a, b, dst });
}

struct ReluOp<'a> {
    src: &'a [f32],
    dst: &'a mut [f32],
}

impl SimdOp for ReluOp<'_> {
    type Output = ();
    #[inline(always)]
    fn eval<S: Simd>(self, s: S) {
        let n = self.dst.len();
        let (sp, dp) = (self.src.as_ptr(), self.dst.as_mut_ptr());
        let zero = s.splat(0.0);
        let mut i = 0;
        // SAFETY: i + LANES <= n on every vector iteration; both slices
        // are n long.
        unsafe {
            while i + S::LANES <= n {
                s.store(dp.add(i), s.max(s.load(sp.add(i)), zero));
                i += S::LANES;
            }
        }
        let t = ScalarSimd;
        while i < n {
            self.dst[i] = t.max(self.src[i], 0.0);
            i += 1;
        }
    }
}

struct AddOp<'a> {
    a: &'a [f32],
    b: &'a [f32],
    dst: &'a mut [f32],
}

impl SimdOp for AddOp<'_> {
    type Output = ();
    #[inline(always)]
    fn eval<S: Simd>(self, s: S) {
        let n = self.dst.len();
        let (ap, bp, dp) = (self.a.as_ptr(), self.b.as_ptr(), self.dst.as_mut_ptr());
        let mut i = 0;
        // SAFETY: i + LANES <= n; all three slices are n long.
        unsafe {
            while i + S::LANES <= n {
                s.store(dp.add(i), s.add(s.load(ap.add(i)), s.load(bp.add(i))));
                i += S::LANES;
            }
        }
        while i < n {
            self.dst[i] = self.a[i] + self.b[i];
            i += 1;
        }
    }
}

struct AddReluOp<'a> {
    a: &'a [f32],
    b: &'a [f32],
    dst: &'a mut [f32],
}

impl SimdOp for AddReluOp<'_> {
    type Output = ();
    #[inline(always)]
    fn eval<S: Simd>(self, s: S) {
        let n = self.dst.len();
        let (ap, bp, dp) = (self.a.as_ptr(), self.b.as_ptr(), self.dst.as_mut_ptr());
        let zero = s.splat(0.0);
        let mut i = 0;
        // SAFETY: i + LANES <= n; all three slices are n long.
        unsafe {
            while i + S::LANES <= n {
                let sum = s.add(s.load(ap.add(i)), s.load(bp.add(i)));
                s.store(dp.add(i), s.max(sum, zero));
                i += S::LANES;
            }
        }
        let t = ScalarSimd;
        while i < n {
            self.dst[i] = t.max(self.a[i] + self.b[i], 0.0);
            i += 1;
        }
    }
}

/// Row-wise softmax of a `(N, K)` matrix, numerically stabilized.
///
/// The row max and the normalizer sum are computed scalar in index order
/// (identical in every arm); the exp and divide passes vectorize
/// elementwise, so the result is bitwise identical across ISAs. Logits
/// are assumed finite.
///
/// # Errors
///
/// Returns a rank error for non-matrices.
pub fn softmax_rows(x: &Tensor) -> Result<Tensor, TensorError> {
    let (mut out, k) = softmax_prepare(x)?;
    dispatch(SoftmaxRowsOp {
        data: out.data_mut(),
        k,
    });
    Ok(out)
}

/// Scalar-arm reference for [`softmax_rows`]: same algorithm forced onto
/// the one-lane arm. Benches and bit-gates diff the dispatched path
/// against this (the difference must be exactly 0).
///
/// # Errors
///
/// Returns a rank error for non-matrices.
pub fn softmax_rows_scalar(x: &Tensor) -> Result<Tensor, TensorError> {
    let (mut out, k) = softmax_prepare(x)?;
    epim_simd::run_scalar(SoftmaxRowsOp {
        data: out.data_mut(),
        k,
    });
    Ok(out)
}

fn softmax_prepare(x: &Tensor) -> Result<(Tensor, usize), TensorError> {
    if x.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: x.rank(),
            op: "softmax",
        });
    }
    Ok((x.clone(), x.shape()[1]))
}

struct SoftmaxRowsOp<'a> {
    data: &'a mut [f32],
    k: usize,
}

impl SimdOp for SoftmaxRowsOp<'_> {
    type Output = ();
    #[inline(always)]
    fn eval<S: Simd>(self, s: S) {
        let k = self.k;
        if k == 0 {
            return;
        }
        let t = ScalarSimd;
        for row in self.data.chunks_exact_mut(k) {
            let mut m = f32::NEG_INFINITY;
            for &v in row.iter() {
                m = t.max(v, m);
            }
            let p = row.as_mut_ptr();
            let mv = s.splat(m);
            let mut i = 0;
            // SAFETY: i + LANES <= k inside the row.
            unsafe {
                while i + S::LANES <= k {
                    s.store(p.add(i), math::exp(s, s.sub(s.load(p.add(i)), mv)));
                    i += S::LANES;
                }
            }
            while i < k {
                row[i] = math::exp(t, row[i] - m);
                i += 1;
            }
            let mut z = 0.0;
            for &v in row.iter() {
                z += v;
            }
            let zv = s.splat(z);
            let mut i = 0;
            // SAFETY: i + LANES <= k inside the row.
            unsafe {
                while i + S::LANES <= k {
                    s.store(p.add(i), s.div(s.load(p.add(i)), zv));
                    i += S::LANES;
                }
            }
            while i < k {
                row[i] /= z;
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epim_simd::{dispatch_on, run_scalar, CpuFeatures};

    #[test]
    fn relu_clamps_negative() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_gates_gradient() {
        let x = Tensor::from_vec(vec![-1.0, 0.5], &[2]).unwrap();
        let dy = Tensor::from_vec(vec![3.0, 3.0], &[2]).unwrap();
        assert_eq!(relu_backward(&x, &dy).unwrap().data(), &[0.0, 3.0]);
    }

    /// Values chosen to stress the clamp semantics: signed zeros (the
    /// pinned `max` maps `-0.0` to `+0.0` in every arm), NaN (clamped to
    /// `0.0` by every arm), infinities, denormals and a dense sweep
    /// crossing zero.
    fn adversarial_values() -> Vec<f32> {
        let mut vals = vec![
            0.0,
            -0.0,
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
            1.0e-42,
            -1.0e-42,
            1.0e30,
            -1.0e30,
            3.3333333,
            -7.7777777,
        ];
        for i in -2000i32..=2000 {
            vals.push(i as f32 * 0.01);
        }
        vals
    }

    /// Second operand stream for the add kernels, misaligned in magnitude
    /// so sums cross zero and produce `-0.0` (`-x + x`), `NaN`
    /// (`inf + -inf`) and denormal results.
    fn adversarial_partner() -> Vec<f32> {
        adversarial_values()
            .iter()
            .enumerate()
            .map(|(i, &v)| match i % 3 {
                0 => -v,
                1 => v * 0.5 - 1.0,
                _ => 0.25,
            })
            .collect()
    }

    #[test]
    fn slices_match_scalar_reference_bitwise() {
        let a = adversarial_values();
        let b = adversarial_partner();

        let mut want = vec![0.0f32; a.len()];
        run_scalar(ReluOp {
            src: &a,
            dst: &mut want,
        });
        // The scalar arm itself pins the documented clamp semantics.
        assert_eq!(want[0].to_bits(), 0.0f32.to_bits()); // +0.0 -> +0.0
        assert_eq!(want[1].to_bits(), 0.0f32.to_bits()); // -0.0 -> +0.0
        assert_eq!(want[2].to_bits(), 0.0f32.to_bits()); // NaN  -> 0.0
        let mut got = vec![f32::NAN; a.len()];
        relu_slice(&a, &mut got);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "relu element {i}: {g} vs {w}");
        }

        let mut want = vec![0.0f32; a.len()];
        for (w, (&av, &bv)) in want.iter_mut().zip(a.iter().zip(&b)) {
            *w = av + bv;
        }
        let mut got = vec![f32::NAN; a.len()];
        add_slice(&a, &b, &mut got);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "add element {i}: {g} vs {w}");
        }

        // Fused add+relu == add then relu, bitwise.
        let mut want = vec![0.0f32; a.len()];
        add_slice(&a, &b, &mut want);
        let want: Vec<f32> = {
            let mut r = vec![0.0f32; a.len()];
            relu_slice(&want, &mut r);
            r
        };
        let mut got = vec![f32::NAN; a.len()];
        add_relu_slice(&a, &b, &mut got);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "add_relu element {i}: {g} vs {w}");
        }
    }

    /// Exercises every ISA arm the CPU supports via the force-override
    /// dispatcher hook, regardless of which one `dispatch` picks.
    #[test]
    fn every_available_arm_matches_scalar_bitwise() {
        let a = adversarial_values();
        let b = adversarial_partner();
        let mut relu_want = vec![0.0f32; a.len()];
        run_scalar(ReluOp {
            src: &a,
            dst: &mut relu_want,
        });
        let mut add_want = vec![0.0f32; a.len()];
        run_scalar(AddOp {
            a: &a,
            b: &b,
            dst: &mut add_want,
        });
        let mut ar_want = vec![0.0f32; a.len()];
        run_scalar(AddReluOp {
            a: &a,
            b: &b,
            dst: &mut ar_want,
        });

        let check = |got: &[f32], want: &[f32], label: &str| {
            for (i, (g, w)) in got.iter().zip(want).enumerate() {
                assert_eq!(g.to_bits(), w.to_bits(), "{label} element {i}: {g} vs {w}");
            }
        };

        for isa in CpuFeatures::get().available() {
            let mut got = vec![f32::NAN; a.len()];
            dispatch_on(
                isa,
                ReluOp {
                    src: &a,
                    dst: &mut got,
                },
            );
            check(&got, &relu_want, &format!("relu {isa:?}"));
            dispatch_on(
                isa,
                AddOp {
                    a: &a,
                    b: &b,
                    dst: &mut got,
                },
            );
            check(&got, &add_want, &format!("add {isa:?}"));
            dispatch_on(
                isa,
                AddReluOp {
                    a: &a,
                    b: &b,
                    dst: &mut got,
                },
            );
            check(&got, &ar_want, &format!("add_relu {isa:?}"));
        }
    }

    #[test]
    fn short_slices_hit_the_scalar_tail() {
        for len in 0..24 {
            let a: Vec<f32> = (0..len).map(|i| i as f32 * 0.37 - 2.0).collect();
            let b: Vec<f32> = (0..len).map(|i| 1.5 - i as f32 * 0.21).collect();
            let mut want = vec![0.0f32; len];
            run_scalar(AddReluOp {
                a: &a,
                b: &b,
                dst: &mut want,
            });
            let mut got = vec![f32::NAN; len];
            add_relu_slice(&a, &b, &mut got);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn sigmoid_bounds_and_midpoint() {
        let x = Tensor::from_vec(vec![-100.0, 0.0, 100.0], &[3]).unwrap();
        let y = sigmoid(&x);
        assert!(y.data()[0] < 1e-6);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data()[2] > 1.0 - 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], &[2, 3]).unwrap();
        let y = softmax_rows(&x).unwrap();
        for i in 0..2 {
            let s: f32 = y.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // Large-logit row stays finite (stabilization works).
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_monotone_in_logits() {
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0], &[1, 3]).unwrap();
        let y = softmax_rows(&x).unwrap();
        assert!(y.data()[0] < y.data()[1] && y.data()[1] < y.data()[2]);
    }

    /// Every ISA arm of the softmax matches the scalar arm bitwise, on
    /// odd row widths (scalar tails), wide dynamic range and ±0 logits.
    #[test]
    fn softmax_arms_match_scalar_bitwise() {
        for k in [1usize, 3, 7, 16, 33, 100] {
            let n = 5;
            let data: Vec<f32> = (0..n * k)
                .map(|i| match i % 11 {
                    0 => 0.0,
                    1 => -0.0,
                    2 => -50.0,
                    3 => 30.0,
                    _ => (i as f32 * 0.739).sin() * 8.0,
                })
                .collect();
            let x = Tensor::from_vec(data, &[n, k]).unwrap();
            let want = softmax_rows_scalar(&x).unwrap();
            for isa in CpuFeatures::get().available() {
                let mut got = x.clone();
                dispatch_on(
                    isa,
                    SoftmaxRowsOp {
                        data: got.data_mut(),
                        k,
                    },
                );
                for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
                    assert_eq!(g.to_bits(), w.to_bits(), "softmax {isa:?} k={k} elem {i}");
                }
            }
        }
    }

    /// The polynomial exp keeps softmax within a tight tolerance of the
    /// libm-based formula it replaced.
    #[test]
    fn softmax_close_to_libm_reference() {
        let k = 97;
        let data: Vec<f32> = (0..3 * k)
            .map(|i| (i as f32 * 0.113).cos() * 20.0)
            .collect();
        let x = Tensor::from_vec(data.clone(), &[3, k]).unwrap();
        let y = softmax_rows(&x).unwrap();
        for r in 0..3 {
            let row = &data[r * k..(r + 1) * k];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = row.iter().map(|&v| (v - m).exp()).collect();
            let z: f32 = exps.iter().sum();
            for (i, &e) in exps.iter().enumerate() {
                let want = e / z;
                let got = y.data()[r * k + i];
                assert!(
                    (got - want).abs() <= 1e-6 + want.abs() * 1e-5,
                    "row {r} elem {i}: {got} vs libm {want}"
                );
            }
        }
    }
}
