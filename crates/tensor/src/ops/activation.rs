//! Activation functions and the vectorized elementwise kernels behind the
//! fused serving stages.
//!
//! The serving pipeline's standalone `Relu`/`Add` stages and the fused
//! `Add → Relu` kernel bottom out in the slice kernels here
//! ([`relu_slice`], [`add_slice`], [`add_relu_slice`]), which dispatch at
//! runtime to AVX-512F, AVX2 or scalar code — the same pattern as the GEMM
//! micro-kernels in [`crate::ops::gemm`] and `epim_pim`'s quantizer.
//!
//! **Bit-exactness.** The graph-fusion invariant (fused programs bitwise
//! equal to the unfused reference) requires every kernel to reproduce the
//! scalar `v.max(0.0)` / `a + b` exactly. Addition is the same IEEE op in
//! scalar and vector form; for the clamp, the vector kernels compute
//! `max_ps(x, 0.0)` with the value in the **first** operand — x86 `maxps`
//! returns the second operand on equal-or-NaN inputs, so `-0.0` maps to
//! `+0.0` and `NaN` to `0.0`, exactly as the scalar `f32::max(x, 0.0)`
//! lowering does.

use crate::{Tensor, TensorError};

/// Rectified linear unit, elementwise.
pub fn relu(x: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(x.shape());
    relu_slice(x.data(), out.data_mut());
    out
}

/// Backward pass of [`relu`]: passes gradient where the input was positive.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `x` and `dy` differ in shape.
pub fn relu_backward(x: &Tensor, dy: &Tensor) -> Result<Tensor, TensorError> {
    x.zip(dy, |xv, g| if xv > 0.0 { g } else { 0.0 })
}

/// Logistic sigmoid, elementwise.
pub fn sigmoid(x: &Tensor) -> Tensor {
    x.map(|v| 1.0 / (1.0 + (-v).exp()))
}

/// Instruction-set variant for the elementwise kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// 16-wide AVX-512F.
    Avx512,
    /// 8-wide AVX2.
    Avx2,
    /// One lane at a time, autovectorizer permitting.
    Scalar,
}

/// Detects the best available kernel once per process.
fn kind() -> Kind {
    static KIND: std::sync::OnceLock<Kind> = std::sync::OnceLock::new();
    *KIND.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") {
                return Kind::Avx512;
            }
            if is_x86_feature_detected!("avx2") {
                return Kind::Avx2;
            }
        }
        Kind::Scalar
    })
}

/// `dst[i] = max(src[i], 0.0)`, bit-exactly matching the scalar clamp.
///
/// # Panics
///
/// Panics if `src` and `dst` lengths differ.
pub fn relu_slice(src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "relu_slice length mismatch");
    match kind() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `kind()` verified the avx512f feature at runtime.
        Kind::Avx512 => unsafe { relu_avx512(src, dst) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `kind()` verified the avx2 feature at runtime.
        Kind::Avx2 => unsafe { relu_avx2(src, dst) },
        #[cfg(not(target_arch = "x86_64"))]
        Kind::Avx512 | Kind::Avx2 => relu_scalar(src, dst),
        Kind::Scalar => relu_scalar(src, dst),
    }
}

/// `dst[i] = a[i] + b[i]` (the residual-shortcut add).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn add_slice(a: &[f32], b: &[f32], dst: &mut [f32]) {
    assert_eq!(a.len(), dst.len(), "add_slice length mismatch");
    assert_eq!(b.len(), dst.len(), "add_slice length mismatch");
    match kind() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `kind()` verified the avx512f feature at runtime.
        Kind::Avx512 => unsafe { add_avx512(a, b, dst) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `kind()` verified the avx2 feature at runtime.
        Kind::Avx2 => unsafe { add_avx2(a, b, dst) },
        #[cfg(not(target_arch = "x86_64"))]
        Kind::Avx512 | Kind::Avx2 => add_scalar(a, b, dst),
        Kind::Scalar => add_scalar(a, b, dst),
    }
}

/// `dst[i] = max(a[i] + b[i], 0.0)` in one traversal — the fused
/// `Add → Relu` stage. Bit-identical to [`add_slice`] followed by
/// [`relu_slice`].
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn add_relu_slice(a: &[f32], b: &[f32], dst: &mut [f32]) {
    assert_eq!(a.len(), dst.len(), "add_relu_slice length mismatch");
    assert_eq!(b.len(), dst.len(), "add_relu_slice length mismatch");
    match kind() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `kind()` verified the avx512f feature at runtime.
        Kind::Avx512 => unsafe { add_relu_avx512(a, b, dst) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `kind()` verified the avx2 feature at runtime.
        Kind::Avx2 => unsafe { add_relu_avx2(a, b, dst) },
        #[cfg(not(target_arch = "x86_64"))]
        Kind::Avx512 | Kind::Avx2 => add_relu_scalar(a, b, dst),
        Kind::Scalar => add_relu_scalar(a, b, dst),
    }
}

fn relu_scalar(src: &[f32], dst: &mut [f32]) {
    for (d, &v) in dst.iter_mut().zip(src) {
        *d = v.max(0.0);
    }
}

fn add_scalar(a: &[f32], b: &[f32], dst: &mut [f32]) {
    for ((d, &av), &bv) in dst.iter_mut().zip(a).zip(b) {
        *d = av + bv;
    }
}

fn add_relu_scalar(a: &[f32], b: &[f32], dst: &mut [f32]) {
    for ((d, &av), &bv) in dst.iter_mut().zip(a).zip(b) {
        *d = (av + bv).max(0.0);
    }
}

/// 8-wide AVX2 clamp.
///
/// # Safety
///
/// Caller must verify the `avx2` feature is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn relu_avx2(src: &[f32], dst: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = src.len();
    let zero = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= n {
        let v = _mm256_loadu_ps(src.as_ptr().add(i));
        _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_max_ps(v, zero));
        i += 8;
    }
    relu_scalar(&src[i..], &mut dst[i..]);
}

/// 16-wide AVX-512F clamp.
///
/// # Safety
///
/// Caller must verify the `avx512f` feature is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn relu_avx512(src: &[f32], dst: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = src.len();
    let zero = _mm512_setzero_ps();
    let mut i = 0;
    while i + 16 <= n {
        let v = _mm512_loadu_ps(src.as_ptr().add(i));
        _mm512_storeu_ps(dst.as_mut_ptr().add(i), _mm512_max_ps(v, zero));
        i += 16;
    }
    relu_scalar(&src[i..], &mut dst[i..]);
}

/// 8-wide AVX2 add.
///
/// # Safety
///
/// Caller must verify the `avx2` feature is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn add_avx2(a: &[f32], b: &[f32], dst: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let mut i = 0;
    while i + 8 <= n {
        let av = _mm256_loadu_ps(a.as_ptr().add(i));
        let bv = _mm256_loadu_ps(b.as_ptr().add(i));
        _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_add_ps(av, bv));
        i += 8;
    }
    add_scalar(&a[i..], &b[i..], &mut dst[i..]);
}

/// 16-wide AVX-512F add.
///
/// # Safety
///
/// Caller must verify the `avx512f` feature is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn add_avx512(a: &[f32], b: &[f32], dst: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let mut i = 0;
    while i + 16 <= n {
        let av = _mm512_loadu_ps(a.as_ptr().add(i));
        let bv = _mm512_loadu_ps(b.as_ptr().add(i));
        _mm512_storeu_ps(dst.as_mut_ptr().add(i), _mm512_add_ps(av, bv));
        i += 16;
    }
    add_scalar(&a[i..], &b[i..], &mut dst[i..]);
}

/// 8-wide AVX2 fused add+clamp.
///
/// # Safety
///
/// Caller must verify the `avx2` feature is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn add_relu_avx2(a: &[f32], b: &[f32], dst: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let zero = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= n {
        let av = _mm256_loadu_ps(a.as_ptr().add(i));
        let bv = _mm256_loadu_ps(b.as_ptr().add(i));
        let s = _mm256_add_ps(av, bv);
        _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_max_ps(s, zero));
        i += 8;
    }
    add_relu_scalar(&a[i..], &b[i..], &mut dst[i..]);
}

/// 16-wide AVX-512F fused add+clamp.
///
/// # Safety
///
/// Caller must verify the `avx512f` feature is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn add_relu_avx512(a: &[f32], b: &[f32], dst: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let zero = _mm512_setzero_ps();
    let mut i = 0;
    while i + 16 <= n {
        let av = _mm512_loadu_ps(a.as_ptr().add(i));
        let bv = _mm512_loadu_ps(b.as_ptr().add(i));
        let s = _mm512_add_ps(av, bv);
        _mm512_storeu_ps(dst.as_mut_ptr().add(i), _mm512_max_ps(s, zero));
        i += 16;
    }
    add_relu_scalar(&a[i..], &b[i..], &mut dst[i..]);
}

/// Row-wise softmax of a `(N, K)` matrix, numerically stabilized.
///
/// # Errors
///
/// Returns a rank error for non-matrices.
pub fn softmax_rows(x: &Tensor) -> Result<Tensor, TensorError> {
    if x.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: x.rank(),
            op: "softmax",
        });
    }
    let (n, k) = (x.shape()[0], x.shape()[1]);
    let mut out = x.clone();
    let od = out.data_mut();
    for i in 0..n {
        let row = &mut od[i * k..(i + 1) * k];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            z += *v;
        }
        for v in row.iter_mut() {
            *v /= z;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negative() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_gates_gradient() {
        let x = Tensor::from_vec(vec![-1.0, 0.5], &[2]).unwrap();
        let dy = Tensor::from_vec(vec![3.0, 3.0], &[2]).unwrap();
        assert_eq!(relu_backward(&x, &dy).unwrap().data(), &[0.0, 3.0]);
    }

    /// Values chosen to stress the clamp semantics: signed zeros (the
    /// vector `maxps` must normalize `-0.0` to `+0.0` exactly like the
    /// scalar lowering), NaN (clamped to `0.0` by both), infinities,
    /// denormals and a dense sweep crossing zero.
    fn adversarial_values() -> Vec<f32> {
        let mut vals = vec![
            0.0,
            -0.0,
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
            1.0e-42,
            -1.0e-42,
            1.0e30,
            -1.0e30,
            3.3333333,
            -7.7777777,
        ];
        for i in -2000i32..=2000 {
            vals.push(i as f32 * 0.01);
        }
        vals
    }

    /// Second operand stream for the add kernels, misaligned in magnitude
    /// so sums cross zero and produce `-0.0` (`-x + x`), `NaN`
    /// (`inf + -inf`) and denormal results.
    fn adversarial_partner() -> Vec<f32> {
        adversarial_values()
            .iter()
            .enumerate()
            .map(|(i, &v)| match i % 3 {
                0 => -v,
                1 => v * 0.5 - 1.0,
                _ => 0.25,
            })
            .collect()
    }

    #[test]
    fn slices_match_scalar_bitwise() {
        let a = adversarial_values();
        let b = adversarial_partner();

        let mut want = vec![0.0f32; a.len()];
        relu_scalar(&a, &mut want);
        let mut got = vec![f32::NAN; a.len()];
        relu_slice(&a, &mut got);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "relu element {i}: {g} vs {w}");
        }

        let mut want = vec![0.0f32; a.len()];
        add_scalar(&a, &b, &mut want);
        let mut got = vec![f32::NAN; a.len()];
        add_slice(&a, &b, &mut got);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "add element {i}: {g} vs {w}");
        }

        // Fused add+relu == add then relu, bitwise.
        let mut want = vec![0.0f32; a.len()];
        add_slice(&a, &b, &mut want);
        let want: Vec<f32> = {
            let mut r = vec![0.0f32; a.len()];
            relu_slice(&want, &mut r);
            r
        };
        let mut got = vec![f32::NAN; a.len()];
        add_relu_slice(&a, &b, &mut got);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "add_relu element {i}: {g} vs {w}");
        }
    }

    /// Exercises each vector kernel the CPU supports directly, regardless
    /// of which one the dispatchers pick.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn every_available_kernel_matches_scalar_bitwise() {
        let a = adversarial_values();
        let b = adversarial_partner();
        let mut relu_want = vec![0.0f32; a.len()];
        relu_scalar(&a, &mut relu_want);
        let mut add_want = vec![0.0f32; a.len()];
        add_scalar(&a, &b, &mut add_want);
        let mut ar_want = vec![0.0f32; a.len()];
        add_relu_scalar(&a, &b, &mut ar_want);

        let check = |got: &[f32], want: &[f32], label: &str| {
            for (i, (g, w)) in got.iter().zip(want).enumerate() {
                assert_eq!(g.to_bits(), w.to_bits(), "{label} element {i}: {g} vs {w}");
            }
        };

        if is_x86_feature_detected!("avx2") {
            let mut got = vec![f32::NAN; a.len()];
            // SAFETY: feature checked on the line above.
            unsafe { relu_avx2(&a, &mut got) };
            check(&got, &relu_want, "relu avx2");
            // SAFETY: feature checked above.
            unsafe { add_avx2(&a, &b, &mut got) };
            check(&got, &add_want, "add avx2");
            // SAFETY: feature checked above.
            unsafe { add_relu_avx2(&a, &b, &mut got) };
            check(&got, &ar_want, "add_relu avx2");
        }
        if is_x86_feature_detected!("avx512f") {
            let mut got = vec![f32::NAN; a.len()];
            // SAFETY: feature checked on the line above.
            unsafe { relu_avx512(&a, &mut got) };
            check(&got, &relu_want, "relu avx512");
            // SAFETY: feature checked above.
            unsafe { add_avx512(&a, &b, &mut got) };
            check(&got, &add_want, "add avx512");
            // SAFETY: feature checked above.
            unsafe { add_relu_avx512(&a, &b, &mut got) };
            check(&got, &ar_want, "add_relu avx512");
        }
    }

    #[test]
    fn short_slices_hit_the_scalar_tail() {
        for len in 0..24 {
            let a: Vec<f32> = (0..len).map(|i| i as f32 * 0.37 - 2.0).collect();
            let b: Vec<f32> = (0..len).map(|i| 1.5 - i as f32 * 0.21).collect();
            let mut want = vec![0.0f32; len];
            add_relu_scalar(&a, &b, &mut want);
            let mut got = vec![f32::NAN; len];
            add_relu_slice(&a, &b, &mut got);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn sigmoid_bounds_and_midpoint() {
        let x = Tensor::from_vec(vec![-100.0, 0.0, 100.0], &[3]).unwrap();
        let y = sigmoid(&x);
        assert!(y.data()[0] < 1e-6);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data()[2] > 1.0 - 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], &[2, 3]).unwrap();
        let y = softmax_rows(&x).unwrap();
        for i in 0..2 {
            let s: f32 = y.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // Large-logit row stays finite (stabilization works).
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_monotone_in_logits() {
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0], &[1, 3]).unwrap();
        let y = softmax_rows(&x).unwrap();
        assert!(y.data()[0] < y.data()[1] && y.data()[1] < y.data()[2]);
    }
}
