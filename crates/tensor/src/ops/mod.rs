//! Neural-network operators with forward and backward passes.
//!
//! All operators work on [`crate::Tensor`] values in `(N, C, H, W)` layout
//! for images and `(N, F)` for flattened features. Each forward function has
//! a matching `*_backward` returning input/parameter gradients, enabling the
//! small-scale training experiments that substitute for the paper's ImageNet
//! runs.

mod activation;
mod conv;
pub mod gemm;
mod linear;
mod loss;
mod pool;

pub use activation::{
    add_relu_slice, add_slice, relu, relu_backward, relu_slice, sigmoid, softmax_rows,
    softmax_rows_scalar,
};
pub use conv::{
    col2im, conv2d, conv2d_backward, conv2d_direct, conv2d_into, conv2d_out_dims, conv2d_ref,
    fill_receptive_field, im2col, kx_run, Conv2dCfg, Conv2dGrads,
};
pub use linear::{linear, linear_backward, LinearGrads};
pub use loss::{cross_entropy, CrossEntropyOutput};
pub use pool::{
    avg_pool2d, avg_pool2d_backward, global_avg_pool, global_avg_pool_into, max_pool2d,
    max_pool2d_into, PoolCfg,
};
