//! Weight initialization schemes.

use crate::{rng, Tensor};
use rand::rngs::SmallRng;

/// Kaiming/He normal initialization for convolution weights
/// `(c_out, c_in, kh, kw)` or linear weights `(out, in)`.
///
/// The fan-in is the product of all dimensions except the first.
///
/// # Example
///
/// ```
/// let mut rng = epim_tensor::rng::seeded(0);
/// let w = epim_tensor::init::kaiming_normal(&[16, 8, 3, 3], &mut rng);
/// assert_eq!(w.shape(), &[16, 8, 3, 3]);
/// ```
pub fn kaiming_normal(shape: &[usize], rng_: &mut SmallRng) -> Tensor {
    let fan_in: usize = shape.iter().skip(1).product::<usize>().max(1);
    let std = (2.0 / fan_in as f32).sqrt();
    Tensor::from_fn(shape, |_| rng::normal(rng_, 0.0, std))
}

/// Xavier/Glorot uniform initialization.
pub fn xavier_uniform(shape: &[usize], rng_: &mut SmallRng) -> Tensor {
    let fan_in: usize = shape.iter().skip(1).product::<usize>().max(1);
    let fan_out = shape.first().copied().unwrap_or(1);
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::from_fn(shape, |_| rng::uniform(rng_, -bound, bound))
}

/// Uniform initialization in `[lo, hi)`.
pub fn uniform(shape: &[usize], lo: f32, hi: f32, rng_: &mut SmallRng) -> Tensor {
    Tensor::from_fn(shape, |_| rng::uniform(rng_, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut r = rng::seeded(3);
        let w_small_fan = kaiming_normal(&[64, 4, 1, 1], &mut r);
        let mut r = rng::seeded(3);
        let w_large_fan = kaiming_normal(&[64, 256, 1, 1], &mut r);
        let std = |t: &Tensor| (t.norm_sq() / t.len() as f32).sqrt();
        assert!(std(&w_small_fan) > std(&w_large_fan) * 2.0);
    }

    #[test]
    fn xavier_within_bound() {
        let mut r = rng::seeded(4);
        let w = xavier_uniform(&[10, 10], &mut r);
        let bound = (6.0f32 / 20.0).sqrt();
        assert!(w.abs_max() <= bound);
    }

    #[test]
    fn uniform_within_range() {
        let mut r = rng::seeded(5);
        let w = uniform(&[100], -0.5, 0.5, &mut r);
        assert!(w.min() >= -0.5 && w.max() < 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = rng::seeded(9);
        let mut b = rng::seeded(9);
        assert_eq!(
            kaiming_normal(&[4, 4], &mut a),
            kaiming_normal(&[4, 4], &mut b)
        );
    }
}
