//! Synthetic datasets for the small-scale accuracy experiments.
//!
//! Substitutes for ImageNet (not distributable offline): class-conditional
//! Gaussian "blob" images and striped-texture images, easy enough to learn
//! in seconds yet structured enough that convolution quality matters.

use crate::{rng, Tensor};
use rand::Rng;

/// A labelled image dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Images, `(N, C, H, W)`.
    pub images: Tensor,
    /// Class indices, length `N`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Splits into `(train, test)` with `test_fraction` of examples held
    /// out (deterministic: the tail goes to the test split).
    pub fn split(&self, test_fraction: f32) -> (Dataset, Dataset) {
        let n = self.len();
        let n_test = ((n as f32 * test_fraction).round() as usize).min(n);
        let n_train = n - n_test;
        let per = self.images.len() / n.max(1);
        let make = |range: std::ops::Range<usize>| {
            let count = range.len();
            let mut shape = self.images.shape().to_vec();
            shape[0] = count;
            Dataset {
                images: Tensor::from_vec(
                    self.images.data()[range.start * per..range.end * per].to_vec(),
                    &shape,
                )
                .expect("split slice matches shape"),
                labels: self.labels[range].to_vec(),
                classes: self.classes,
            }
        };
        (make(0..n_train), make(n_train..n))
    }
}

/// Class-conditional Gaussian blobs: class `k` places a bright blob at a
/// class-specific location plus noise.
///
/// Produces `per_class * classes` images of `channels x size x size`.
///
/// # Example
///
/// ```
/// let ds = epim_tensor::data::blobs(4, 1, 8, 10, 0);
/// assert_eq!(ds.len(), 40);
/// assert_eq!(ds.images.shape(), &[40, 1, 8, 8]);
/// ```
pub fn blobs(classes: usize, channels: usize, size: usize, per_class: u32, seed: u64) -> Dataset {
    let mut r = rng::seeded(seed);
    let n = classes * per_class as usize;
    let mut images = Tensor::zeros(&[n, channels, size, size]);
    let mut labels = Vec::with_capacity(n);
    let mut idx = 0usize;
    for class in 0..classes {
        // Blob center on a ring, distinct per class.
        let theta = 2.0 * std::f32::consts::PI * class as f32 / classes as f32;
        let cx = size as f32 / 2.0 + (size as f32 / 4.0) * theta.cos();
        let cy = size as f32 / 2.0 + (size as f32 / 4.0) * theta.sin();
        for _ in 0..per_class {
            let jx = cx + rng::normal(&mut r, 0.0, 0.5);
            let jy = cy + rng::normal(&mut r, 0.0, 0.5);
            for c in 0..channels {
                for y in 0..size {
                    for x in 0..size {
                        let d2 = (x as f32 - jx).powi(2) + (y as f32 - jy).powi(2);
                        let v = (-d2 / 4.0).exp() + rng::normal(&mut r, 0.0, 0.05);
                        images
                            .set(&[idx, c, y, x], v)
                            .expect("index within constructed shape");
                    }
                }
            }
            labels.push(class);
            idx += 1;
        }
    }
    shuffle_in_unison(&mut images, &mut labels, seed ^ 0x5eed);
    Dataset {
        images,
        labels,
        classes,
    }
}

/// Striped-texture dataset: class `k` has stripes of period `k + 2` —
/// requires genuinely convolutional features (frequency detection).
pub fn stripes(classes: usize, size: usize, per_class: u32, seed: u64) -> Dataset {
    let mut r = rng::seeded(seed);
    let n = classes * per_class as usize;
    let mut images = Tensor::zeros(&[n, 1, size, size]);
    let mut labels = Vec::with_capacity(n);
    let mut idx = 0usize;
    for class in 0..classes {
        let period = (class + 2) as f32;
        for _ in 0..per_class {
            let phase: f32 = r.gen_range(0.0..std::f32::consts::PI);
            let vertical: bool = r.gen_bool(0.5);
            for y in 0..size {
                for x in 0..size {
                    let t = if vertical { x as f32 } else { y as f32 };
                    let v = (2.0 * std::f32::consts::PI * t / period + phase).sin()
                        + rng::normal(&mut r, 0.0, 0.1);
                    images
                        .set(&[idx, 0, y, x], v)
                        .expect("index within constructed shape");
                }
            }
            labels.push(class);
            idx += 1;
        }
    }
    shuffle_in_unison(&mut images, &mut labels, seed ^ 0x57121e);
    Dataset {
        images,
        labels,
        classes,
    }
}

fn shuffle_in_unison(images: &mut Tensor, labels: &mut [usize], seed: u64) {
    let n = labels.len();
    if n <= 1 {
        return;
    }
    let per = images.len() / n;
    let mut r = rng::seeded(seed);
    // Fisher–Yates over example indices, swapping image slices and labels.
    for i in (1..n).rev() {
        let j = r.gen_range(0..=i);
        if i != j {
            labels.swap(i, j);
            let data = images.data_mut();
            for k in 0..per {
                data.swap(i * per + k, j * per + k);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_shapes_and_labels() {
        let ds = blobs(3, 2, 8, 5, 1);
        assert_eq!(ds.len(), 15);
        assert_eq!(ds.images.shape(), &[15, 2, 8, 8]);
        assert_eq!(ds.classes, 3);
        for &l in &ds.labels {
            assert!(l < 3);
        }
        // All classes present.
        for class in 0..3 {
            assert!(ds.labels.contains(&class));
        }
    }

    #[test]
    fn blobs_deterministic() {
        let a = blobs(2, 1, 8, 4, 9);
        let b = blobs(2, 1, 8, 4, 9);
        assert_eq!(a.images, b.images);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn different_seeds_differ() {
        let a = blobs(2, 1, 8, 4, 1);
        let b = blobs(2, 1, 8, 4, 2);
        assert_ne!(a.images, b.images);
    }

    #[test]
    fn split_partitions() {
        let ds = blobs(2, 1, 8, 10, 3);
        let (train, test) = ds.split(0.25);
        assert_eq!(train.len(), 15);
        assert_eq!(test.len(), 5);
        assert_eq!(train.images.shape()[0], 15);
        assert_eq!(test.images.shape()[0], 5);
    }

    #[test]
    fn stripes_classes_have_distinct_spectra() {
        let ds = stripes(2, 12, 3, 4);
        assert_eq!(ds.len(), 6);
        assert_eq!(ds.images.shape(), &[6, 1, 12, 12]);
    }

    #[test]
    fn shuffle_keeps_image_label_pairs() {
        // After shuffling, each blob image's brightest location must still
        // match its label's ring position; verify via reconstruction:
        // build unshuffled dataset with per_class=1 so labels are unique.
        let ds = blobs(4, 1, 16, 1, 5);
        for i in 0..ds.len() {
            let label = ds.labels[i];
            let theta = 2.0 * std::f32::consts::PI * label as f32 / 4.0;
            let cx = 8.0 + 4.0 * theta.cos();
            let cy = 8.0 + 4.0 * theta.sin();
            // Find argmax pixel.
            let mut best = (0usize, 0usize, f32::NEG_INFINITY);
            for y in 0..16 {
                for x in 0..16 {
                    let v = ds.images.at(&[i, 0, y, x]);
                    if v > best.2 {
                        best = (y, x, v);
                    }
                }
            }
            let d = ((best.1 as f32 - cx).powi(2) + (best.0 as f32 - cy).powi(2)).sqrt();
            assert!(d < 3.0, "blob for label {label} drifted {d}");
        }
    }
}
