//! A tiny layer/trainer stack for the small-scale training experiments.
//!
//! The EPIM paper trains ResNet-50/101 on ImageNet; that is out of scope for
//! an offline reproduction (see `DESIGN.md` §2). This module supplies the
//! substitute: enough machinery to train small CNNs on synthetic data so the
//! *relative* accuracy behaviour of conv vs. epitome vs. quantized epitome
//! can be demonstrated with real gradient descent.
//!
//! Layers follow a classic cache-and-backprop design: `forward` stores
//! whatever the backward pass needs, `backward` consumes the upstream
//! gradient and accumulates parameter gradients, and an [`Sgd`] optimizer
//! applies them.

use crate::ops::{
    avg_pool2d, avg_pool2d_backward, conv2d, conv2d_backward, cross_entropy, linear,
    linear_backward, relu, relu_backward, Conv2dCfg, PoolCfg,
};
use crate::{init, rng, Tensor, TensorError};
use rand::rngs::SmallRng;

/// A trainable parameter: value plus accumulated gradient.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

impl Param {
    /// Wraps a tensor as a parameter with zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }

    /// Zeroes the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.map_inplace(|_| 0.0);
    }
}

/// A differentiable layer.
///
/// This trait is used as an object (`Box<dyn Layer>`) inside [`Sequential`],
/// so all methods are object-safe.
pub trait Layer {
    /// Runs the forward pass, caching activations needed by `backward`.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if the input shape is incompatible.
    fn forward(&mut self, x: &Tensor) -> Result<Tensor, TensorError>;

    /// Runs the backward pass given the upstream gradient; returns the
    /// gradient w.r.t. the layer input and accumulates parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if `forward` has not run or shapes mismatch.
    fn backward(&mut self, dy: &Tensor) -> Result<Tensor, TensorError>;

    /// The layer's trainable parameters, if any.
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// A short human-readable description.
    fn describe(&self) -> String;

    /// Downcast hook for layers that keep parameter state outside the
    /// [`Param`] mechanism (e.g. an epitome tensor with its own gradient
    /// buffer). Layers that need post-step processing return `Some(self)`;
    /// the default is `None`.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

/// 2-D convolution layer.
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    cfg: Conv2dCfg,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-initialized weights.
    pub fn new(
        c_in: usize,
        c_out: usize,
        kernel: usize,
        cfg: Conv2dCfg,
        rng_: &mut SmallRng,
    ) -> Self {
        Conv2d {
            weight: Param::new(init::kaiming_normal(&[c_out, c_in, kernel, kernel], rng_)),
            bias: Param::new(Tensor::zeros(&[c_out])),
            cfg,
            cached_input: None,
        }
    }

    /// Creates a convolution from an explicit weight tensor
    /// `(C_out, C_in, KH, KW)`.
    pub fn from_weight(weight: Tensor, cfg: Conv2dCfg) -> Self {
        let c_out = weight.shape()[0];
        Conv2d {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[c_out])),
            cfg,
            cached_input: None,
        }
    }

    /// Read access to the current weight.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Replaces the weight value (e.g. with a fake-quantized copy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shape changes.
    pub fn set_weight(&mut self, w: Tensor) -> Result<(), TensorError> {
        self.weight
            .value
            .shape_obj()
            .ensure_same(w.shape_obj(), "set_weight")?;
        self.weight.value = w;
        Ok(())
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor, TensorError> {
        self.cached_input = Some(x.clone());
        conv2d(x, &self.weight.value, Some(&self.bias.value), self.cfg)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor, TensorError> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or_else(|| TensorError::invalid("backward before forward"))?;
        let g = conv2d_backward(x, &self.weight.value, dy, self.cfg)?;
        self.weight.grad.axpy(1.0, &g.dw)?;
        self.bias.grad.axpy(1.0, &g.db)?;
        Ok(g.dx)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn describe(&self) -> String {
        format!(
            "Conv2d({}x{}x{}x{}, stride {}, pad {})",
            self.weight.value.shape()[0],
            self.weight.value.shape()[1],
            self.weight.value.shape()[2],
            self.weight.value.shape()[3],
            self.cfg.stride,
            self.cfg.padding
        )
    }
}

/// ReLU layer.
#[derive(Debug, Default)]
pub struct Relu {
    cached_input: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { cached_input: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor, TensorError> {
        self.cached_input = Some(x.clone());
        Ok(relu(x))
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor, TensorError> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or_else(|| TensorError::invalid("backward before forward"))?;
        relu_backward(x, dy)
    }

    fn describe(&self) -> String {
        "ReLU".to_string()
    }
}

/// Average-pooling layer.
#[derive(Debug)]
pub struct AvgPool {
    cfg: PoolCfg,
    cached_shape: Option<Vec<usize>>,
}

impl AvgPool {
    /// Creates an average-pooling layer.
    pub fn new(window: usize, stride: usize) -> Self {
        AvgPool {
            cfg: PoolCfg::new(window, stride),
            cached_shape: None,
        }
    }
}

impl Layer for AvgPool {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor, TensorError> {
        self.cached_shape = Some(x.shape().to_vec());
        avg_pool2d(x, self.cfg)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor, TensorError> {
        let shape = self
            .cached_shape
            .as_ref()
            .ok_or_else(|| TensorError::invalid("backward before forward"))?;
        avg_pool2d_backward(shape, dy, self.cfg)
    }

    fn describe(&self) -> String {
        format!(
            "AvgPool(window {}, stride {})",
            self.cfg.window, self.cfg.stride
        )
    }
}

/// Flattens `(N, C, H, W)` to `(N, C*H*W)`.
#[derive(Debug, Default)]
pub struct Flatten {
    cached_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cached_shape: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor, TensorError> {
        self.cached_shape = Some(x.shape().to_vec());
        let n = x.shape()[0];
        let rest: usize = x.shape()[1..].iter().product();
        x.reshape(&[n, rest])
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor, TensorError> {
        let shape = self
            .cached_shape
            .as_ref()
            .ok_or_else(|| TensorError::invalid("backward before forward"))?;
        dy.reshape(shape)
    }

    fn describe(&self) -> String {
        "Flatten".to_string()
    }
}

/// Fully-connected layer.
#[derive(Debug)]
pub struct Linear {
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Xavier-initialized weights.
    pub fn new(in_features: usize, out_features: usize, rng_: &mut SmallRng) -> Self {
        Linear {
            weight: Param::new(init::xavier_uniform(&[out_features, in_features], rng_)),
            bias: Param::new(Tensor::zeros(&[out_features])),
            cached_input: None,
        }
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor, TensorError> {
        self.cached_input = Some(x.clone());
        linear(x, &self.weight.value, Some(&self.bias.value))
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor, TensorError> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or_else(|| TensorError::invalid("backward before forward"))?;
        let g = linear_backward(x, &self.weight.value, dy)?;
        self.weight.grad.axpy(1.0, &g.dw)?;
        self.bias.grad.axpy(1.0, &g.db)?;
        Ok(g.dx)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn describe(&self) -> String {
        format!(
            "Linear({} -> {})",
            self.weight.value.shape()[1],
            self.weight.value.shape()[0]
        )
    }
}

/// A stack of layers applied in sequence.
///
/// # Example
///
/// ```
/// use epim_tensor::nn::{Sequential, Conv2d, Relu, Flatten, Linear};
/// use epim_tensor::ops::Conv2dCfg;
/// use epim_tensor::{rng, Tensor};
///
/// # fn main() -> Result<(), epim_tensor::TensorError> {
/// let mut r = rng::seeded(0);
/// let mut net = Sequential::new();
/// net.push(Conv2d::new(1, 4, 3, Conv2dCfg { stride: 1, padding: 1 }, &mut r));
/// net.push(Relu::new());
/// net.push(Flatten::new());
/// net.push(Linear::new(4 * 8 * 8, 3, &mut r));
/// let y = net.forward(&Tensor::zeros(&[2, 1, 8, 8]))?;
/// assert_eq!(y.shape(), &[2, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential[{}]", self.describe())
    }
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Mutable access to layer `i` (to swap weights, fake-quantize, ...).
    pub fn layer_mut(&mut self, i: usize) -> Option<&mut Box<dyn Layer>> {
        self.layers.get_mut(i)
    }

    /// Forward pass through every layer.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error.
    pub fn forward(&mut self, x: &Tensor) -> Result<Tensor, TensorError> {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur)?;
        }
        Ok(cur)
    }

    /// Backward pass through every layer in reverse.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error.
    pub fn backward(&mut self, dy: &Tensor) -> Result<Tensor, TensorError> {
        let mut cur = dy.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur)?;
        }
        Ok(cur)
    }

    /// All trainable parameters across layers.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// One-line summary of the stack.
    pub fn describe(&self) -> String {
        self.layers
            .iter()
            .map(|l| l.describe())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Applies one update step to `params`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if a parameter changed shape between steps.
    pub fn step(&mut self, params: &mut [&mut Param]) -> Result<(), TensorError> {
        if self.velocity.len() != params.len() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
        }
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            if self.momentum > 0.0 {
                // v = momentum*v - lr*grad; w += v
                *v = v.scale(self.momentum);
                v.axpy(-self.lr, &p.grad)?;
                p.value.axpy(1.0, v)?;
            } else {
                p.value.axpy(-self.lr, &p.grad)?;
            }
        }
        Ok(())
    }
}

/// Statistics from one [`train_epoch`] pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean loss over batches.
    pub loss: f32,
    /// Mean accuracy over batches.
    pub accuracy: f32,
}

/// Trains `net` for one epoch over `(images, labels)` mini-batches.
///
/// `images` is `(N, C, H, W)`; batches are consecutive chunks of
/// `batch_size`.
///
/// # Errors
///
/// Propagates layer/loss errors.
pub fn train_epoch(
    net: &mut Sequential,
    opt: &mut Sgd,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> Result<EpochStats, TensorError> {
    let n = images.shape()[0];
    if labels.len() != n {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n],
            actual: vec![labels.len()],
            op: "train_epoch (labels)",
        });
    }
    if batch_size == 0 {
        return Err(TensorError::invalid("batch_size must be nonzero"));
    }
    let mut total_loss = 0.0;
    let mut total_acc = 0.0;
    let mut batches = 0;
    let per = images.len() / n;
    let mut start = 0;
    while start < n {
        let end = (start + batch_size).min(n);
        let bsz = end - start;
        let mut shape = images.shape().to_vec();
        shape[0] = bsz;
        let batch = Tensor::from_vec(images.data()[start * per..end * per].to_vec(), &shape)?;
        let batch_labels = &labels[start..end];

        net.zero_grad();
        let logits = net.forward(&batch)?;
        let out = cross_entropy(&logits, batch_labels)?;
        net.backward(&out.dlogits)?;
        opt.step(&mut net.params_mut())?;

        total_loss += out.loss;
        total_acc += out.accuracy;
        batches += 1;
        start = end;
    }
    Ok(EpochStats {
        loss: total_loss / batches as f32,
        accuracy: total_acc / batches as f32,
    })
}

/// Evaluates `net` and returns `(loss, accuracy)` without updating weights.
///
/// # Errors
///
/// Propagates layer/loss errors.
pub fn evaluate(
    net: &mut Sequential,
    images: &Tensor,
    labels: &[usize],
) -> Result<EpochStats, TensorError> {
    let logits = net.forward(images)?;
    let out = cross_entropy(&logits, labels)?;
    Ok(EpochStats {
        loss: out.loss,
        accuracy: out.accuracy,
    })
}

/// Builds a small CNN classifier: conv-relu-pool ×2, then linear head.
///
/// Input is `(N, c_in, size, size)`; `size` must be divisible by 4.
pub fn small_cnn(c_in: usize, size: usize, classes: usize, seed: u64) -> Sequential {
    let mut r = rng::seeded(seed);
    let mut net = Sequential::new();
    net.push(Conv2d::new(
        c_in,
        8,
        3,
        Conv2dCfg {
            stride: 1,
            padding: 1,
        },
        &mut r,
    ));
    net.push(Relu::new());
    net.push(AvgPool::new(2, 2));
    net.push(Conv2d::new(
        8,
        16,
        3,
        Conv2dCfg {
            stride: 1,
            padding: 1,
        },
        &mut r,
    ));
    net.push(Relu::new());
    net.push(AvgPool::new(2, 2));
    net.push(Flatten::new());
    net.push(Linear::new(16 * (size / 4) * (size / 4), classes, &mut r));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::blobs;

    #[test]
    fn sequential_shapes_flow() {
        let mut net = small_cnn(1, 8, 4, 0);
        let y = net.forward(&Tensor::zeros(&[3, 1, 8, 8])).unwrap();
        assert_eq!(y.shape(), &[3, 4]);
        assert!(net.describe().contains("Conv2d"));
    }

    #[test]
    fn backward_requires_forward() {
        let mut r = rng::seeded(0);
        let mut conv = Conv2d::new(1, 1, 3, Conv2dCfg::default(), &mut r);
        assert!(conv.backward(&Tensor::zeros(&[1, 1, 1, 1])).is_err());
    }

    #[test]
    fn sgd_reduces_quadratic_loss() {
        // Minimize ||w||^2 directly through the Param/Sgd machinery.
        let mut p = Param::new(Tensor::full(&[4], 2.0));
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..100 {
            p.grad = p.value.clone(); // d/dw (w^2/2) = w
            opt.step(&mut [&mut p]).unwrap();
        }
        assert!(p.value.abs_max() < 1e-3);
    }

    #[test]
    fn momentum_accelerates() {
        let run = |momentum: f32| {
            let mut p = Param::new(Tensor::full(&[1], 1.0));
            let mut opt = Sgd::new(0.01, momentum);
            for _ in 0..50 {
                p.grad = p.value.clone();
                opt.step(&mut [&mut p]).unwrap();
            }
            p.value.data()[0].abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn training_learns_blobs() {
        // End-to-end: the small CNN must beat chance on an easy dataset.
        let ds = blobs(4, 1, 8, 40, 7);
        let mut net = small_cnn(1, 8, 4, 1);
        let mut opt = Sgd::new(0.05, 0.9);
        let mut last = EpochStats {
            loss: f32::INFINITY,
            accuracy: 0.0,
        };
        for _ in 0..15 {
            last = train_epoch(&mut net, &mut opt, &ds.images, &ds.labels, 16).unwrap();
        }
        assert!(last.accuracy > 0.5, "accuracy {}", last.accuracy);
    }

    #[test]
    fn train_epoch_validates_inputs() {
        let mut net = small_cnn(1, 8, 2, 0);
        let mut opt = Sgd::new(0.1, 0.0);
        let imgs = Tensor::zeros(&[4, 1, 8, 8]);
        assert!(train_epoch(&mut net, &mut opt, &imgs, &[0, 1], 2).is_err());
        assert!(train_epoch(&mut net, &mut opt, &imgs, &[0, 1, 0, 1], 0).is_err());
    }
}
