use crate::TensorError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a [`crate::Tensor`]: an ordered list of dimension extents.
///
/// Shapes are row-major: the last dimension is contiguous in memory.
/// A rank-0 shape (no dimensions) denotes a scalar with one element.
///
/// # Example
///
/// ```
/// use epim_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.flat_index(&[1, 2, 3]), Some(23));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// Creates a scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of extents; 1 for a scalar).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape holds zero elements (some extent is 0).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides for this shape.
    ///
    /// `strides()[i]` is the number of elements to skip to advance one step
    /// along dimension `i`.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat offset, or `None` if the
    /// index is out of bounds (wrong rank or any coordinate too large).
    ///
    /// Allocation-free: the offset accumulates right-to-left without
    /// materializing the stride vector.
    pub fn flat_index(&self, index: &[usize]) -> Option<usize> {
        if index.len() != self.dims.len() {
            return None;
        }
        let mut flat = 0usize;
        let mut stride = 1usize;
        for (&i, &d) in index.iter().zip(&self.dims).rev() {
            if i >= d {
                return None;
            }
            flat += i * stride;
            stride *= d;
        }
        Some(flat)
    }

    /// Converts a flat offset back to a multi-dimensional index.
    ///
    /// Returns `None` if `flat` is out of range.
    pub fn unflatten(&self, flat: usize) -> Option<Vec<usize>> {
        if flat >= self.len() {
            return None;
        }
        let mut rem = flat;
        let mut idx = vec![0usize; self.dims.len()];
        for (slot, &d) in idx.iter_mut().zip(&self.dims).rev() {
            *slot = rem % d;
            rem /= d;
        }
        Some(idx)
    }

    /// Checks that this shape equals `other`, returning a [`TensorError`]
    /// naming `op` otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn ensure_same(&self, other: &Shape, op: &'static str) -> Result<(), TensorError> {
        if self == other {
            Ok(())
        } else {
            Err(TensorError::ShapeMismatch {
                expected: self.dims.clone(),
                actual: other.dims.clone(),
                op,
            })
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.len(), 24);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.flat_index(&[]), Some(0));
        assert_eq!(s.unflatten(0), Some(vec![]));
    }

    #[test]
    fn flat_index_roundtrip() {
        let s = Shape::new(vec![3, 5, 7]);
        for flat in 0..s.len() {
            let idx = s.unflatten(flat).unwrap();
            assert_eq!(s.flat_index(&idx), Some(flat));
        }
    }

    #[test]
    fn flat_index_out_of_bounds() {
        let s = Shape::new(vec![2, 2]);
        assert_eq!(s.flat_index(&[2, 0]), None);
        assert_eq!(s.flat_index(&[0]), None);
        assert_eq!(s.unflatten(4), None);
    }

    #[test]
    fn zero_extent_shape_is_empty() {
        let s = Shape::new(vec![2, 0, 3]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(vec![2, 3]).to_string(), "[2x3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn ensure_same_errors() {
        let a = Shape::new(vec![2, 3]);
        let b = Shape::new(vec![3, 2]);
        assert!(a.ensure_same(&a.clone(), "t").is_ok());
        assert!(a.ensure_same(&b, "t").is_err());
    }
}
