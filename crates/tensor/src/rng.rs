//! Deterministic random number generation helpers.
//!
//! All stochastic pieces of the EPIM reproduction (weight init, dataset
//! synthesis, evolutionary mutation) draw from [`SmallRng`] instances seeded
//! explicitly, so every experiment is reproducible bit-for-bit.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
///
/// # Example
///
/// ```
/// let mut rng = epim_tensor::rng::seeded(42);
/// let a = epim_tensor::rng::uniform(&mut rng, -1.0, 1.0);
/// let mut rng2 = epim_tensor::rng::seeded(42);
/// let b = epim_tensor::rng::uniform(&mut rng2, -1.0, 1.0);
/// assert_eq!(a, b);
/// ```
pub fn seeded(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// A uniform sample in `[lo, hi)`.
pub fn uniform(rng: &mut SmallRng, lo: f32, hi: f32) -> f32 {
    rng.gen_range(lo..hi)
}

/// A standard-normal sample via Box–Muller.
pub fn normal(rng: &mut SmallRng, mean: f32, std: f32) -> f32 {
    // Box–Muller transform; avoids a dependency on rand_distr.
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
    mean + std * z
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(7);
        let mut b = seeded(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = seeded(1);
        for _ in 0..1000 {
            let x = uniform(&mut rng, -2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = seeded(2);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| normal(&mut rng, 1.0, 2.0)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }
}
