use crate::{Shape, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major `f32` ND tensor.
///
/// `Tensor` is the workhorse data structure of the EPIM reproduction: it
/// stores convolution weights, epitome parameters, feature maps and the
/// matrices mapped onto memristor crossbars.
///
/// # Example
///
/// ```
/// use epim_tensor::Tensor;
///
/// # fn main() -> Result<(), epim_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::eye(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c.data(), a.data());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let shape = Shape::from(shape);
        let data = vec![0.0; shape.len()];
        Tensor { shape, data }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let shape = Shape::from(shape);
        let data = vec![value; shape.len()];
        Tensor { shape, data }
    }

    /// Creates a rank-0 scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// Creates a tensor from a flat `Vec` and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len()` does not equal
    /// the number of elements implied by `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::from(shape);
        if data.len() != shape.len() {
            return Err(TensorError::ShapeMismatch {
                expected: vec![shape.len()],
                actual: vec![data.len()],
                op: "from_vec",
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor by evaluating `f` at every multi-index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let shape = Shape::from(shape);
        let len = shape.len();
        let mut data = Vec::with_capacity(len);
        // Odometer walk: one index buffer for the whole traversal instead of
        // an unflatten allocation per element.
        let mut idx = vec![0usize; shape.rank()];
        for _ in 0..len {
            data.push(f(&idx));
            for d in (0..idx.len()).rev() {
                idx[d] += 1;
                if idx[d] < shape.dims()[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        Tensor { shape, data }
    }

    /// Identity matrix of size `n x n`.
    pub fn eye(n: usize) -> Self {
        Tensor::from_fn(&[n, n], |idx| if idx[0] == idx[1] { 1.0 } else { 0.0 })
    }

    /// Evenly spaced values `[0, 1, ..., n-1]` as a rank-1 tensor.
    pub fn arange(n: usize) -> Self {
        let data: Vec<f32> = (0..n).map(|i| i as f32).collect();
        Tensor {
            shape: Shape::from(vec![n]),
            data,
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The dimension extents.
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The shape object (with stride helpers).
    pub fn shape_obj(&self) -> &Shape {
        &self.shape
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.shape.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying flat data, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Value at a multi-index.
    ///
    /// Returns `None` if the index is out of bounds.
    pub fn get(&self, index: &[usize]) -> Option<f32> {
        self.shape.flat_index(index).map(|i| self.data[i])
    }

    /// Sets the value at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::OutOfBounds`] if the index is invalid.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        match self.shape.flat_index(index) {
            Some(i) => {
                self.data[i] = value;
                Ok(())
            }
            None => Err(TensorError::OutOfBounds {
                index: index.to_vec(),
                shape: self.shape.dims().to_vec(),
            }),
        }
    }

    /// Value at a multi-index without bounds checks beyond `debug_assert`.
    ///
    /// Allocation-free: the flat offset is accumulated right-to-left
    /// instead of materializing a stride vector (this sits on several hot
    /// paths — epitome reconstruction, the PIM data path, reference convs).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the index is out of bounds; in release
    /// builds an out-of-bounds index may panic on the flat access.
    pub fn at(&self, index: &[usize]) -> f32 {
        debug_assert!(
            self.shape.flat_index(index).is_some(),
            "index out of bounds"
        );
        let mut flat = 0usize;
        let mut stride = 1usize;
        for (&i, &d) in index.iter().zip(self.shape.dims()).rev() {
            flat += i * stride;
            stride *= d;
        }
        self.data[flat]
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor, TensorError> {
        let new_shape = Shape::from(shape);
        if new_shape.len() != self.len() {
            return Err(TensorError::ShapeMismatch {
                expected: vec![self.len()],
                actual: vec![new_shape.len()],
                op: "reshape",
            });
        }
        Ok(Tensor {
            shape: new_shape,
            data: self.data.clone(),
        })
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn transpose(&self) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "transpose",
            });
        }
        let (r, c) = (self.shape()[0], self.shape()[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Permutes the dimensions of the tensor.
    ///
    /// `perm` must be a permutation of `0..rank`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `perm` is not a valid
    /// permutation of the dimensions.
    pub fn permute(&self, perm: &[usize]) -> Result<Tensor, TensorError> {
        if perm.len() != self.rank() {
            return Err(TensorError::invalid(format!(
                "permutation length {} does not match rank {}",
                perm.len(),
                self.rank()
            )));
        }
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            if p >= perm.len() || seen[p] {
                return Err(TensorError::invalid(format!(
                    "invalid permutation {perm:?}"
                )));
            }
            seen[p] = true;
        }
        let old_dims = self.shape();
        let new_dims: Vec<usize> = perm.iter().map(|&p| old_dims[p]).collect();
        let new_shape = Shape::from(new_dims.clone());
        let old_strides = self.shape.strides();
        // Stride of each *new* axis in the old layout; walk the output with
        // an odometer instead of unflattening every element.
        let permuted_strides: Vec<usize> = perm.iter().map(|&p| old_strides[p]).collect();
        let mut data = vec![0.0f32; self.len()];
        let mut idx = vec![0usize; new_dims.len()];
        let mut old_flat = 0usize;
        for item in data.iter_mut() {
            *item = self.data[old_flat];
            for d in (0..idx.len()).rev() {
                idx[d] += 1;
                old_flat += permuted_strides[d];
                if idx[d] < new_dims[d] {
                    break;
                }
                old_flat -= new_dims[d] * permuted_strides[d];
                idx[d] = 0;
            }
        }
        Ok(Tensor {
            shape: new_shape,
            data,
        })
    }

    // ------------------------------------------------------------------
    // Elementwise and reduction ops
    // ------------------------------------------------------------------

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise binary zip.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor, TensorError> {
        self.shape.ensure_same(&other.shape, "zip")?;
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip(other, |a, b| a * b)
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Adds `other * s` into `self` in place (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, s: f32, other: &Tensor) -> Result<(), TensorError> {
        self.shape.ensure_same(&other.shape, "axpy")?;
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
        Ok(())
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Minimum element (`+inf` for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum element (`-inf` for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Maximum absolute element (0 for an empty tensor).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Squared L2 norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Mean squared error against another tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mse(&self, other: &Tensor) -> Result<f32, TensorError> {
        self.shape.ensure_same(&other.shape, "mse")?;
        if self.data.is_empty() {
            return Ok(0.0);
        }
        let s: f32 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum();
        Ok(s / self.data.len() as f32)
    }

    /// Whether all elements are within `tol` of the other tensor's.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> Result<bool, TensorError> {
        self.shape.ensure_same(&other.shape, "allclose")?;
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .all(|(&a, &b)| (a - b).abs() <= tol))
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix multiplication of two rank-2 tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if either operand is not a
    /// matrix, or [`TensorError::ShapeMismatch`] if inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "matmul",
            });
        }
        if other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: other.rank(),
                op: "matmul",
            });
        }
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                expected: vec![m, k],
                actual: vec![k2, n],
                op: "matmul",
            });
        }
        let mut out = vec![0.0f32; m * n];
        // Cache-blocked, register-tiled kernel (see `ops::gemm`); replaces
        // the seed's serial ikj loop.
        crate::ops::gemm::gemm(m, n, k, &self.data, &other.data, &mut out);
        Ok(Tensor {
            shape: Shape::from(vec![m, n]),
            data: out,
        })
    }

    /// Matrix–vector product: `self (m x k) * v (k) -> (m)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`]
    /// on geometry violations.
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "matvec",
            });
        }
        if v.rank() != 1 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: v.rank(),
                op: "matvec",
            });
        }
        let (m, k) = (self.shape()[0], self.shape()[1]);
        if v.len() != k {
            return Err(TensorError::ShapeMismatch {
                expected: vec![k],
                actual: vec![v.len()],
                op: "matvec",
            });
        }
        let mut out = vec![0.0f32; m];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.data[i * k..(i + 1) * k]
                .iter()
                .zip(v.data())
                .map(|(&a, &b)| a * b)
                .sum();
        }
        Ok(Tensor {
            shape: Shape::from(vec![m]),
            data: out,
        })
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} n={}", self.shape, self.len())
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 3]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[2, 3]).sum(), 6.0);
        assert_eq!(Tensor::full(&[4], 2.5).sum(), 10.0);
        assert_eq!(Tensor::scalar(7.0).data(), &[7.0]);
        assert_eq!(Tensor::arange(4).data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_vec_validates_len() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[3, 4]);
        t.set(&[2, 3], 9.0).unwrap();
        assert_eq!(t.get(&[2, 3]), Some(9.0));
        assert_eq!(t.at(&[2, 3]), 9.0);
        assert_eq!(t.get(&[3, 0]), None);
        assert!(t.set(&[0, 4], 1.0).is_err());
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let i = Tensor::eye(3);
        let b = a.matmul(&i).unwrap();
        assert_eq!(b.data(), a.data());
    }

    #[test]
    fn matmul_known_result() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_shape_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(a.matmul(&b).is_err());
        let v = Tensor::zeros(&[3]);
        assert!(v.matmul(&a).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let v = Tensor::from_vec(vec![1.0, 0.5, -1.0], &[3]).unwrap();
        let got = a.matvec(&v).unwrap();
        let want = a.matmul(&v.reshape(&[3, 1]).unwrap()).unwrap();
        assert_eq!(got.data(), want.data());
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.shape(), &[4, 3]);
        assert_eq!(t.transpose().unwrap(), a);
    }

    #[test]
    fn permute_matches_transpose_for_matrices() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]).unwrap();
        assert_eq!(a.permute(&[1, 0]).unwrap(), a.transpose().unwrap());
    }

    #[test]
    fn permute_validates() {
        let a = Tensor::zeros(&[2, 3, 4]);
        assert!(a.permute(&[0, 1]).is_err());
        assert!(a.permute(&[0, 0, 1]).is_err());
        assert!(a.permute(&[0, 1, 3]).is_err());
        let p = a.permute(&[2, 0, 1]).unwrap();
        assert_eq!(p.shape(), &[4, 2, 3]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
        let mut c = a.clone();
        c.axpy(2.0, &b).unwrap();
        assert_eq!(c.data(), &[7.0, 12.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![-3.0, 1.0, 2.0], &[3]).unwrap();
        assert_eq!(a.sum(), 0.0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.min(), -3.0);
        assert_eq!(a.max(), 2.0);
        assert_eq!(a.abs_max(), 3.0);
        assert_eq!(a.norm_sq(), 14.0);
    }

    #[test]
    fn mse_and_allclose() {
        let a = Tensor::ones(&[4]);
        let b = Tensor::full(&[4], 1.5);
        assert!((a.mse(&b).unwrap() - 0.25).abs() < 1e-6);
        assert!(a.allclose(&b, 0.5).unwrap());
        assert!(!a.allclose(&b, 0.4).unwrap());
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::arange(6);
        let b = a.reshape(&[2, 3]).unwrap();
        assert_eq!(b.at(&[1, 2]), 5.0);
        assert!(a.reshape(&[4]).is_err());
    }

    #[test]
    fn permute_3d_roundtrip() {
        let a = Tensor::from_fn(&[2, 3, 4], |i| (i[0] * 100 + i[1] * 10 + i[2]) as f32);
        let p = a.permute(&[2, 0, 1]).unwrap();
        assert_eq!(p.at(&[3, 1, 2]), a.at(&[1, 2, 3]));
        // Inverse permutation restores original.
        let back = p.permute(&[1, 2, 0]).unwrap();
        assert_eq!(back, a);
    }
}
