//! # epim-tensor
//!
//! A minimal, dependency-light ND tensor and neural-network substrate used by
//! the EPIM reproduction. It provides:
//!
//! - [`Tensor`]: a dense, row-major, `f32` ND tensor with shape arithmetic,
//!   elementwise ops, matrix multiplication and slicing.
//! - Neural-network building blocks in [`ops`]: 2-D convolution (direct and
//!   im2col), linear layers, pooling, batch normalization and activations,
//!   each with a hand-written backward pass.
//! - A tiny layer/trainer stack in [`nn`] sufficient to train small CNNs on
//!   the synthetic datasets in [`data`] — this is the substitute for the
//!   paper's ImageNet training runs (see `DESIGN.md` §2).
//!
//! Correctness and reproducibility come first — everything is deterministic
//! given a seed — but the compute spine is no longer naive: all matrix
//! products route through the cache-blocked, runtime-SIMD-dispatched kernels
//! in [`ops::gemm`], and the convolution path fuses im2col, GEMM and bias
//! into a single pass over the output (see `ops::conv`).
//!
//! ## Example
//!
//! ```
//! use epim_tensor::{Tensor, ops::conv2d, ops::Conv2dCfg};
//!
//! # fn main() -> Result<(), epim_tensor::TensorError> {
//! // A 1x3x8x8 input convolved with a 4x3x3x3 kernel, stride 1, padding 1.
//! let x = Tensor::ones(&[1, 3, 8, 8]);
//! let w = Tensor::full(&[4, 3, 3, 3], 0.5);
//! let y = conv2d(&x, &w, None, Conv2dCfg { stride: 1, padding: 1 })?;
//! assert_eq!(y.shape(), &[1, 4, 8, 8]);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod error;
mod shape;
mod tensor;

pub mod data;
pub mod init;
pub mod nn;
pub mod ops;
pub mod rng;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;
