//! Property tests for the blocked GEMM kernel layer and the fused
//! convolution path: every optimized kernel must agree with its naive
//! reference across adversarial shapes (non-multiples of the tile sizes,
//! degenerate dimensions, strides, padding, 1x1 kernels).

use epim_tensor::ops::{
    conv2d, conv2d_backward, conv2d_direct, conv2d_ref, gemm, linear, linear_backward, Conv2dCfg,
};
use epim_tensor::{init, rng, Tensor};
use proptest::prelude::*;

fn tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut r = rng::seeded(seed);
    init::uniform(shape, -1.0, 1.0, &mut r)
}

/// f64-accumulated dense reference for C = A · B.
fn matmul_f64(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                acc += a[i * k + p] as f64 * b[p * n + j] as f64;
            }
            c[i * n + j] = acc as f32;
        }
    }
    c
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked GEMM matches an f64 reference on arbitrary (odd) shapes.
    #[test]
    fn gemm_matches_reference((m, n, k, seed) in (1usize..80, 1usize..80, 1usize..300, 0u64..1000)) {
        let a = tensor(&[m, k], seed);
        let b = tensor(&[k, n], seed ^ 1);
        let want = matmul_f64(m, n, k, a.data(), b.data());
        let got = a.matmul(&b).unwrap();
        prop_assert!(max_abs_diff(got.data(), &want) < 1e-4,
            "gemm {}x{}x{} diff {}", m, n, k, max_abs_diff(got.data(), &want));
    }

    /// The seed's ikj loop and the blocked kernel agree.
    #[test]
    fn gemm_matches_seed_ikj((m, n, k, seed) in (1usize..64, 1usize..64, 1usize..200, 0u64..1000)) {
        let a = tensor(&[m, k], seed);
        let b = tensor(&[k, n], seed ^ 2);
        let mut want = vec![0.0f32; m * n];
        gemm::reference_matmul(m, n, k, a.data(), b.data(), &mut want);
        let got = a.matmul(&b).unwrap();
        prop_assert!(max_abs_diff(got.data(), &want) < 1e-4);
    }

    /// gemm_tn/gemm_nt match explicitly materialized transposes.
    #[test]
    fn transposed_variants_match((m, n, k, seed) in (1usize..48, 1usize..48, 1usize..200, 0u64..1000)) {
        // gemm_tn: A stored (k x m).
        let a_t = tensor(&[k, m], seed);
        let b = tensor(&[k, n], seed ^ 3);
        let mut got = vec![0.0f32; m * n];
        gemm::gemm_tn(m, n, k, a_t.data(), b.data(), &mut got);
        let want = a_t.transpose().unwrap().matmul(&b).unwrap();
        prop_assert!(max_abs_diff(&got, want.data()) < 1e-4, "gemm_tn {}x{}x{}", m, n, k);

        // gemm_nt: B stored (n x k).
        let a = tensor(&[m, k], seed ^ 4);
        let b_t = tensor(&[n, k], seed ^ 5);
        let mut got = vec![0.0f32; m * n];
        gemm::gemm_nt(m, n, k, a.data(), b_t.data(), &mut got);
        let want = a.matmul(&b_t.transpose().unwrap()).unwrap();
        prop_assert!(max_abs_diff(&got, want.data()) < 1e-4, "gemm_nt {}x{}x{}", m, n, k);
    }

    /// The fused conv path matches the naive direct reference across odd
    /// geometries: stride 2, padding 1, 1x1 kernels, non-square inputs.
    #[test]
    fn fused_conv_matches_direct(
        (n, cin, cout, seed) in (1usize..3, 1usize..6, 1usize..9, 0u64..1000),
        (k, stride, padding) in (1usize..=4, 1usize..=2, 0usize..=2),
        (h, w) in (4usize..11, 4usize..11),
    ) {
        // Skip geometries where the kernel does not fit.
        if k > h + 2 * padding || k > w + 2 * padding {
            return Ok(());
        }
        let cfg = Conv2dCfg { stride, padding };
        let x = tensor(&[n, cin, h, w], seed);
        let wt = tensor(&[cout, cin, k, k], seed ^ 6);
        let b = tensor(&[cout], seed ^ 7);

        let fused = conv2d(&x, &wt, Some(&b), cfg).unwrap();
        let direct = conv2d_direct(&x, &wt, Some(&b), cfg).unwrap();
        prop_assert!(fused.allclose(&direct, 1e-4).unwrap(),
            "conv n={} cin={} cout={} k={} s={} p={} {}x{} mse={}",
            n, cin, cout, k, stride, padding, h, w, fused.mse(&direct).unwrap());

        // And the seed's unfused pipeline agrees too.
        let unfused = conv2d_ref(&x, &wt, Some(&b), cfg).unwrap();
        prop_assert!(fused.allclose(&unfused, 1e-4).unwrap());
    }

    /// Fused linear (bias folded into the GEMM prefill) matches the
    /// two-pass reference.
    #[test]
    fn linear_bias_fusion_matches((n, fin, fout, seed) in (1usize..20, 1usize..40, 1usize..40, 0u64..1000)) {
        let x = tensor(&[n, fin], seed);
        let w = tensor(&[fout, fin], seed ^ 8);
        let b = tensor(&[fout], seed ^ 9);
        let got = linear(&x, &w, Some(&b)).unwrap();
        // Reference: matmul against the materialized transpose, then add.
        let mut want = x.matmul(&w.transpose().unwrap()).unwrap();
        for row in want.data_mut().chunks_mut(fout) {
            for (y, &bv) in row.iter_mut().zip(b.data()) {
                *y += bv;
            }
        }
        prop_assert!(got.allclose(&want, 1e-4).unwrap());
    }

    /// conv2d_backward's GEMM-based dW agrees with a direct accumulation.
    #[test]
    fn conv_backward_dw_matches_direct((seed, stride) in (0u64..1000, 1usize..=2)) {
        let cfg = Conv2dCfg { stride, padding: 1 };
        let x = tensor(&[2, 3, 6, 6], seed);
        let w = tensor(&[4, 3, 3, 3], seed ^ 10);
        let y = conv2d(&x, &w, None, cfg).unwrap();
        let g = conv2d_backward(&x, &w, &y, cfg).unwrap();

        // Direct dW: correlate input with dy.
        let (oh, ow) = (y.shape()[2], y.shape()[3]);
        let direct_dw = Tensor::from_fn(&[4, 3, 3, 3], |idx| {
            let (co, ci, ky, kx) = (idx[0], idx[1], idx[2], idx[3]);
            let mut acc = 0.0f32;
            for ni in 0..2 {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let iy = (oy * stride + ky) as isize - 1;
                        let ix = (ox * stride + kx) as isize - 1;
                        if iy < 0 || ix < 0 || iy >= 6 || ix >= 6 {
                            continue;
                        }
                        acc += x.at(&[ni, ci, iy as usize, ix as usize])
                            * y.at(&[ni, co, oy, ox]);
                    }
                }
            }
            acc
        });
        prop_assert!(g.dw.allclose(&direct_dw, 1e-2).unwrap(),
            "mse {}", g.dw.mse(&direct_dw).unwrap());
    }

    /// dx from linear_backward is the adjoint of the forward map:
    /// <y, linear(x)> gradients check out via <dx, x'> == <dy, y'>.
    #[test]
    fn linear_backward_adjointness((n, fin, fout, seed) in (1usize..10, 1usize..24, 1usize..24, 0u64..1000)) {
        let x = tensor(&[n, fin], seed);
        let w = tensor(&[fout, fin], seed ^ 11);
        let dy = tensor(&[n, fout], seed ^ 12);
        let g = linear_backward(&x, &w, &dy).unwrap();
        // <dy, x W^T> == <dx, x> when dx = dy W.
        let lhs: f32 = dy.mul(&linear(&x, &w, None).unwrap()).unwrap().sum();
        let rhs: f32 = g.dx.mul(&x).unwrap().sum();
        prop_assert!((lhs - rhs).abs() <= 1e-2 * (1.0 + lhs.abs().max(rhs.abs())),
            "lhs {} rhs {}", lhs, rhs);
    }
}
