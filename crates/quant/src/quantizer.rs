//! The uniform affine quantizer (paper Eq. 2–3).

use crate::{QuantError, RangeEstimator};
use epim_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A fitted uniform affine quantizer.
///
/// Maps reals in the clipping range `[α, β]` to `k`-bit integer codes with
/// the scaling factor `S = (β − α) / (2^k − 1)` (paper Eq. 3). This is the
/// paper's `Q(r) = Int(r / S) − Z` (Eq. 2) with the zero point chosen so
/// that `α` lands exactly on the grid: codes are
/// `q = round((r − α) / S) ∈ [0, 2^k − 1]` and dequantization is
/// `r' = q·S + α`, which keeps the round-trip error within `S / 2` for
/// in-range values. Values outside the range are clipped.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quantizer {
    bits: u8,
    alpha: f32,
    beta: f32,
    scale: f32,
}

impl Quantizer {
    /// Fits a quantizer from an explicit range.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidParameter`] for `bits == 0`,
    /// `bits > 16`, a non-finite range, or `α > β`.
    pub fn from_range(bits: u8, alpha: f32, beta: f32) -> Result<Self, QuantError> {
        if bits == 0 || bits > 16 {
            return Err(QuantError::invalid(format!(
                "bits must be in 1..=16, got {bits}"
            )));
        }
        if !alpha.is_finite() || !beta.is_finite() {
            return Err(QuantError::invalid("range must be finite"));
        }
        if alpha > beta {
            return Err(QuantError::invalid(format!(
                "range inverted: [{alpha}, {beta}]"
            )));
        }
        let levels = ((1u32 << bits) - 1) as f32;
        // Degenerate (constant) signal: unit scale keeps dequantization
        // exact at the single representable value (code 0 maps to α).
        let scale = if beta > alpha {
            (beta - alpha) / levels
        } else {
            1.0
        };
        Ok(Quantizer {
            bits,
            alpha,
            beta,
            scale,
        })
    }

    /// Fits a quantizer to a tensor using a range estimator.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidParameter`] for an empty tensor or bad
    /// bits; estimator-specific errors propagate.
    pub fn fit(tensor: &Tensor, bits: u8, range: &RangeEstimator) -> Result<Self, QuantError> {
        let (alpha, beta) = range.estimate(tensor, None)?;
        Self::from_range(bits, alpha, beta)
    }

    /// Fits a quantizer using a repetition map for overlap weighting
    /// (required by [`RangeEstimator::OverlapWeighted`]).
    ///
    /// # Errors
    ///
    /// Propagates estimator errors (e.g. shape mismatch).
    pub fn fit_with_repetition(
        tensor: &Tensor,
        repetition: &Tensor,
        bits: u8,
        range: &RangeEstimator,
    ) -> Result<Self, QuantError> {
        let (alpha, beta) = range.estimate(tensor, Some(repetition))?;
        Self::from_range(bits, alpha, beta)
    }

    /// The bit width `k`.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The scaling factor `S`.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The quantization step (same as the scale for uniform quantizers).
    pub fn step(&self) -> f32 {
        self.scale
    }

    /// The clipping range `[α, β]`.
    pub fn range(&self) -> (f32, f32) {
        (self.alpha, self.beta)
    }

    /// Quantizes one value to its integer code in `[0, 2^k − 1]`
    /// (paper Eq. 2, with the zero point folded into the grid origin `α`).
    pub fn quantize(&self, r: f32) -> i32 {
        let clipped = r.clamp(self.alpha, self.beta);
        ((clipped - self.alpha) / self.scale).round() as i32
    }

    /// Dequantizes an integer code back to a real value.
    pub fn dequantize(&self, q: i32) -> f32 {
        q as f32 * self.scale + self.alpha
    }

    /// Fake quantization: quantize-then-dequantize every element, the
    /// standard quantization-aware-training forward operator.
    pub fn fake_quant(&self, t: &Tensor) -> Tensor {
        t.map(|v| self.dequantize(self.quantize(v)))
    }

    /// Mean squared quantization error over a tensor.
    pub fn mse(&self, t: &Tensor) -> f32 {
        if t.is_empty() {
            return 0.0;
        }
        let s: f32 = t
            .data()
            .iter()
            .map(|&v| {
                let d = v - self.dequantize(self.quantize(v));
                d * d
            })
            .sum();
        s / t.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epim_tensor::{init, rng};

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let mut r = rng::seeded(1);
        let t = init::uniform(&[1000], -2.0, 2.0, &mut r);
        for bits in [3u8, 5, 7, 9] {
            let q = Quantizer::fit(&t, bits, &RangeEstimator::MinMax).unwrap();
            let deq = q.fake_quant(&t);
            let tol = q.step() / 2.0 + 1e-6;
            assert!(t.allclose(&deq, tol).unwrap(), "bits {bits}");
        }
    }

    #[test]
    fn scale_matches_eq3() {
        let q = Quantizer::from_range(3, -1.0, 1.0).unwrap();
        // S = (β-α)/(2^k -1) = 2/7.
        assert!((q.scale() - 2.0 / 7.0).abs() < 1e-6);
    }

    #[test]
    fn more_bits_less_error() {
        let mut r = rng::seeded(2);
        let t = init::uniform(&[4096], -1.0, 1.0, &mut r);
        let e3 = Quantizer::fit(&t, 3, &RangeEstimator::MinMax)
            .unwrap()
            .mse(&t);
        let e5 = Quantizer::fit(&t, 5, &RangeEstimator::MinMax)
            .unwrap()
            .mse(&t);
        let e9 = Quantizer::fit(&t, 9, &RangeEstimator::MinMax)
            .unwrap()
            .mse(&t);
        assert!(e3 > e5 && e5 > e9);
    }

    #[test]
    fn clipping_outside_range() {
        let q = Quantizer::from_range(4, -1.0, 1.0).unwrap();
        let lo = q.dequantize(q.quantize(-100.0));
        let hi = q.dequantize(q.quantize(100.0));
        assert!(lo >= -1.0 - q.step());
        assert!(hi <= 1.0 + q.step());
    }

    #[test]
    fn constant_tensor_exact() {
        let t = Tensor::full(&[16], 0.37);
        let q = Quantizer::fit(&t, 3, &RangeEstimator::MinMax).unwrap();
        let deq = q.fake_quant(&t);
        assert!(t.allclose(&deq, 1e-6).unwrap());
        assert_eq!(q.mse(&t), 0.0);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Quantizer::from_range(0, -1.0, 1.0).is_err());
        assert!(Quantizer::from_range(17, -1.0, 1.0).is_err());
        assert!(Quantizer::from_range(4, 1.0, -1.0).is_err());
        assert!(Quantizer::from_range(4, f32::NAN, 1.0).is_err());
    }

    #[test]
    fn quantize_integer_codes_in_k_bit_range() {
        let q = Quantizer::from_range(3, -1.0, 1.0).unwrap();
        for v in [-1.0f32, -0.7, -0.1, 0.0, 0.4, 0.99, 1.0, -5.0, 5.0] {
            let code = q.quantize(v);
            assert!((0..8).contains(&code), "code {code} for {v}");
        }
        // Endpoints are exact.
        assert_eq!(q.dequantize(q.quantize(-1.0)), -1.0);
        assert_eq!(q.dequantize(q.quantize(1.0)), 1.0);
    }
}
