//! Clipping-range estimation, including the paper's overlap-weighted
//! method (Eq. 4–5).

use crate::QuantError;
use epim_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Strategy for choosing the clipping range `[α, β]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RangeEstimator {
    /// Plain min/max of the signal ("a straightforward choice", §2.3).
    MinMax,
    /// The paper's epitome-aware estimate (Eq. 4–5): split elements into
    /// the highly-repeated overlap region and the rest, then blend:
    ///
    /// ```text
    /// α = w1·min(overlap) + w2·min(others)
    /// β = w1·max(overlap) + w2·max(others)
    /// ```
    ///
    /// Requires a repetition map (pass it to
    /// [`crate::Quantizer::fit_with_repetition`]). An element belongs to
    /// the overlap region when its repetition count exceeds the minimum
    /// count in the tensor.
    OverlapWeighted {
        /// Weight of the overlap (highly repeated, more important) region.
        w1: f32,
        /// Weight of the rest.
        w2: f32,
    },
}

impl RangeEstimator {
    /// The paper's default overlap weighting (importance skewed towards
    /// the overlap region).
    pub fn overlap_default() -> Self {
        RangeEstimator::OverlapWeighted { w1: 0.7, w2: 0.3 }
    }

    /// Estimates `[α, β]` for `tensor`.
    ///
    /// `repetition` is required by [`RangeEstimator::OverlapWeighted`] and
    /// ignored by [`RangeEstimator::MinMax`].
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidParameter`] for an empty tensor,
    /// missing/mismatched repetition map, or non-positive weights.
    pub fn estimate(
        &self,
        tensor: &Tensor,
        repetition: Option<&Tensor>,
    ) -> Result<(f32, f32), QuantError> {
        if tensor.is_empty() {
            return Err(QuantError::invalid(
                "cannot estimate a range on an empty tensor",
            ));
        }
        match *self {
            RangeEstimator::MinMax => Ok((tensor.min(), tensor.max())),
            RangeEstimator::OverlapWeighted { w1, w2 } => {
                if w1 < 0.0 || w2 < 0.0 || w1 + w2 <= 0.0 {
                    return Err(QuantError::invalid("overlap weights must be non-negative"));
                }
                let reps = repetition.ok_or_else(|| {
                    QuantError::invalid("OverlapWeighted requires a repetition map")
                })?;
                if reps.shape() != tensor.shape() {
                    return Err(QuantError::invalid(
                        "repetition map shape does not match tensor",
                    ));
                }
                // Normalize weights so degenerate cases stay in range.
                let (w1, w2) = (w1 / (w1 + w2), w2 / (w1 + w2));
                let threshold = reps.min();
                let mut ov = (f32::INFINITY, f32::NEG_INFINITY);
                let mut rest = (f32::INFINITY, f32::NEG_INFINITY);
                for (&v, &c) in tensor.data().iter().zip(reps.data()) {
                    let slot = if c > threshold { &mut ov } else { &mut rest };
                    slot.0 = slot.0.min(v);
                    slot.1 = slot.1.max(v);
                }
                // If one region is empty (uniform repetition), fall back to
                // the other region's extrema for both terms.
                let ov = if ov.0.is_finite() { ov } else { rest };
                let rest = if rest.0.is_finite() { rest } else { ov };
                let alpha = w1 * ov.0 + w2 * rest.0;
                let beta = w1 * ov.1 + w2 * rest.1;
                // The blend can invert when regions are disjoint in value;
                // guard by ordering.
                Ok((alpha.min(beta), alpha.max(beta)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epim_core::{ConvShape, Epitome, EpitomeShape, EpitomeSpec};
    use epim_tensor::{init, rng};

    #[test]
    fn minmax_estimates_extrema() {
        let t = Tensor::from_vec(vec![-3.0, 0.5, 2.0], &[3]).unwrap();
        assert_eq!(
            RangeEstimator::MinMax.estimate(&t, None).unwrap(),
            (-3.0, 2.0)
        );
    }

    #[test]
    fn empty_tensor_rejected() {
        let t = Tensor::zeros(&[0]);
        assert!(RangeEstimator::MinMax.estimate(&t, None).is_err());
    }

    #[test]
    fn overlap_requires_repetition() {
        let t = Tensor::ones(&[4]);
        let est = RangeEstimator::overlap_default();
        assert!(est.estimate(&t, None).is_err());
        let bad = Tensor::ones(&[5]);
        assert!(est.estimate(&t, Some(&bad)).is_err());
    }

    #[test]
    fn overlap_weights_validated() {
        let t = Tensor::ones(&[4]);
        let reps = Tensor::ones(&[4]);
        let est = RangeEstimator::OverlapWeighted { w1: -1.0, w2: 0.5 };
        assert!(est.estimate(&t, Some(&reps)).is_err());
    }

    #[test]
    fn overlap_blend_tightens_range_when_outliers_unrepeated() {
        // Outlier values sit in the low-repetition region: the weighted
        // range should be tighter than min/max.
        let t = Tensor::from_vec(vec![-10.0, -1.0, 1.0, 10.0], &[4]).unwrap();
        let reps = Tensor::from_vec(vec![1.0, 3.0, 3.0, 1.0], &[4]).unwrap();
        let (a_mm, b_mm) = RangeEstimator::MinMax.estimate(&t, None).unwrap();
        let (a_ov, b_ov) = RangeEstimator::overlap_default()
            .estimate(&t, Some(&reps))
            .unwrap();
        assert!(
            a_ov > a_mm && b_ov < b_mm,
            "[{a_ov}, {b_ov}] vs [{a_mm}, {b_mm}]"
        );
        // With w1=0.7: α = 0.7*(-1) + 0.3*(-10) = -3.7.
        assert!((a_ov + 3.7).abs() < 1e-5);
        assert!((b_ov - 3.7).abs() < 1e-5);
    }

    #[test]
    fn uniform_repetition_falls_back_to_minmax() {
        let t = Tensor::from_vec(vec![-2.0, 0.0, 2.0], &[3]).unwrap();
        let reps = Tensor::full(&[3], 4.0);
        let (a, b) = RangeEstimator::overlap_default()
            .estimate(&t, Some(&reps))
            .unwrap();
        assert_eq!((a, b), (-2.0, 2.0));
    }

    #[test]
    fn overlap_with_real_epitome_repetition_map() {
        // End-to-end with an actual epitome's repetition structure.
        let spec =
            EpitomeSpec::new(ConvShape::new(4, 9, 1, 1), EpitomeShape::new(4, 5, 1, 1)).unwrap();
        let mut r = rng::seeded(3);
        let data = init::uniform(&spec.shape().dims(), -1.0, 1.0, &mut r);
        let epi = Epitome::from_tensor(spec, data).unwrap();
        let reps = epi.repetition_map();
        assert!(reps.max() > reps.min()); // genuine overlap
        let (a, b) = RangeEstimator::overlap_default()
            .estimate(epi.tensor(), Some(&reps))
            .unwrap();
        assert!(a <= b);
        assert!(a >= epi.tensor().min() - 1e-6);
        assert!(b <= epi.tensor().max() + 1e-6);
    }
}
