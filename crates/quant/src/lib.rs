//! # epim-quant
//!
//! Quantization for epitome-based networks on PIM accelerators, after §4.2
//! of the EPIM paper (DAC 2024):
//!
//! 1. **Uniform affine quantization** ([`Quantizer`], paper Eq. 2–3):
//!    `Q(r) = Int(r / S) − Z` with `S = (β − α) / (2^k − 1)`.
//! 2. **Per-crossbar scaling factors** ([`quantize_per_crossbar`]): because
//!    crossbars compute in parallel, each crossbar tile of the mapped
//!    weight matrix can carry its own scaling factor, recovering accuracy
//!    at ultra-low bit widths (Table 2, "+ Adjust with Crossbars").
//! 3. **Overlap-weighted ranges** ([`RangeEstimator::OverlapWeighted`],
//!    Eq. 4–5): epitome elements in highly-repeated (overlap) regions
//!    matter more; the clipping range is a `w1/w2` weighted blend of the
//!    overlap region's min/max and the rest's (Table 2, "+ Adjusted with
//!    Overlap").
//! 4. **Mixed precision** ([`MixedPrecision`]): a HAWQ-style sensitivity-
//!    ranked bit allocation used for the paper's `W3mp` rows. The
//!    sensitivity signal here is an analytic quantization-perturbation
//!    proxy rather than an ImageNet Hessian trace (see DESIGN.md §2).
//!
//! ## Example
//!
//! ```
//! use epim_quant::{Quantizer, RangeEstimator};
//! use epim_tensor::Tensor;
//!
//! # fn main() -> Result<(), epim_quant::QuantError> {
//! let w = Tensor::from_vec(vec![-1.0, -0.5, 0.0, 0.5, 1.0], &[5])?;
//! let q = Quantizer::fit(&w, 3, &RangeEstimator::MinMax)?;
//! let deq = q.fake_quant(&w);
//! assert!(w.allclose(&deq, q.step() / 2.0 + 1e-6)?);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod error;
mod mixed;
mod quantizer;
mod range;
mod xbar;

pub use error::QuantError;
pub use mixed::{quantizers_for_allocation, sensitivity_proxy, BitAllocation, MixedPrecision};
pub use quantizer::Quantizer;
pub use range::RangeEstimator;
pub use xbar::{quantize_epitome, quantize_per_crossbar, QuantGranularity, QuantReport};
