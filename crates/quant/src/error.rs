use std::error::Error;
use std::fmt;

use epim_core::EpitomeError;
use epim_tensor::TensorError;

/// Error type for quantization operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantError {
    /// A bit width, weight pair or range was invalid.
    InvalidParameter {
        /// What was wrong.
        what: String,
    },
    /// Underlying tensor error.
    Tensor(TensorError),
    /// Underlying epitome error.
    Epitome(EpitomeError),
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::InvalidParameter { what } => {
                write!(f, "invalid quantization parameter: {what}")
            }
            QuantError::Tensor(e) => write!(f, "tensor error: {e}"),
            QuantError::Epitome(e) => write!(f, "epitome error: {e}"),
        }
    }
}

impl Error for QuantError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QuantError::Tensor(e) => Some(e),
            QuantError::Epitome(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for QuantError {
    fn from(e: TensorError) -> Self {
        QuantError::Tensor(e)
    }
}

impl From<EpitomeError> for QuantError {
    fn from(e: EpitomeError) -> Self {
        QuantError::Epitome(e)
    }
}

impl QuantError {
    /// Convenience constructor for [`QuantError::InvalidParameter`].
    pub fn invalid(what: impl Into<String>) -> Self {
        QuantError::InvalidParameter { what: what.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(QuantError::invalid("bits").to_string().contains("bits"));
        let e: QuantError = TensorError::invalid("x").into();
        assert!(e.source().is_some());
        let e: QuantError = EpitomeError::geometry("y").into();
        assert!(e.source().is_some());
    }
}
