//! Per-crossbar quantization of epitome weights (paper §4.2, first
//! adjustment: "given the parallel computation between PIM accelerator
//! crossbars, we allocate a scaling factor to each crossbar").

use crate::{QuantError, Quantizer, RangeEstimator};
use epim_core::Epitome;
use epim_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Scaling-factor granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuantGranularity {
    /// One scaling factor for the whole tensor (the "Naïve Quant" column
    /// of Table 2).
    PerTensor,
    /// One scaling factor per crossbar tile of the mapped matrix
    /// (the "+ Adjust with Crossbars" column).
    PerCrossbar {
        /// Crossbar word lines (row-tile height).
        rows: usize,
        /// Crossbar bit lines (column-tile width).
        cols: usize,
    },
}

/// Result of quantizing a weight tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantReport {
    /// Bit width used.
    pub bits: u8,
    /// Number of independent scaling factors.
    pub groups: usize,
    /// Mean squared quantization error.
    pub mse: f64,
    /// Signal-to-quantization-noise ratio in dB (`10·log10(P_sig/P_err)`),
    /// `inf` for exact quantization.
    pub sqnr_db: f64,
}

fn report(bits: u8, groups: usize, original: &Tensor, quantized: &Tensor) -> QuantReport {
    let mse = original.mse(quantized).expect("same shape") as f64;
    let p_sig = original.norm_sq() as f64 / original.len().max(1) as f64;
    let sqnr_db = if mse <= 0.0 {
        f64::INFINITY
    } else {
        10.0 * (p_sig / mse).log10()
    };
    QuantReport {
        bits,
        groups,
        mse,
        sqnr_db,
    }
}

/// Quantizes a mapped weight matrix `(rows, cols)` with one scaling factor
/// per `rows_tile x cols_tile` crossbar, returning the fake-quantized
/// matrix and a report.
///
/// `repetition` (same shape) enables overlap-weighted ranges inside each
/// tile.
///
/// # Errors
///
/// Returns [`QuantError::InvalidParameter`] for a non-matrix input, zero
/// tile extents or estimator failures.
pub fn quantize_per_crossbar(
    matrix: &Tensor,
    repetition: Option<&Tensor>,
    bits: u8,
    tile_rows: usize,
    tile_cols: usize,
    range: &RangeEstimator,
) -> Result<(Tensor, QuantReport), QuantError> {
    if matrix.rank() != 2 {
        return Err(QuantError::invalid(
            "per-crossbar quantization expects a matrix",
        ));
    }
    if tile_rows == 0 || tile_cols == 0 {
        return Err(QuantError::invalid("tile extents must be nonzero"));
    }
    if let Some(reps) = repetition {
        if reps.shape() != matrix.shape() {
            return Err(QuantError::invalid("repetition map shape mismatch"));
        }
    }
    let (rows, cols) = (matrix.shape()[0], matrix.shape()[1]);
    let mut out = matrix.clone();
    let mut groups = 0usize;
    for r0 in (0..rows).step_by(tile_rows) {
        for c0 in (0..cols).step_by(tile_cols) {
            let r1 = (r0 + tile_rows).min(rows);
            let c1 = (c0 + tile_cols).min(cols);
            // Gather the tile into a dense tensor for range estimation.
            let mut vals = Vec::with_capacity((r1 - r0) * (c1 - c0));
            let mut reps_vals = Vec::new();
            for r in r0..r1 {
                for c in c0..c1 {
                    vals.push(matrix.at(&[r, c]));
                    if let Some(reps) = repetition {
                        reps_vals.push(reps.at(&[r, c]));
                    }
                }
            }
            let tile = Tensor::from_vec(vals, &[(r1 - r0) * (c1 - c0)])?;
            let q = match repetition {
                Some(_) => {
                    let reps_t = Tensor::from_vec(reps_vals, &[tile.len()])?;
                    Quantizer::fit_with_repetition(&tile, &reps_t, bits, range)?
                }
                None => Quantizer::fit(&tile, bits, range)?,
            };
            groups += 1;
            for r in r0..r1 {
                for c in c0..c1 {
                    let v = matrix.at(&[r, c]);
                    out.set(&[r, c], q.dequantize(q.quantize(v)))?;
                }
            }
        }
    }
    let rep = report(bits, groups, matrix, &out);
    Ok((out, rep))
}

/// Quantizes an epitome's parameters in their crossbar-mapped matrix form
/// `(c_in_e·h·w, c_out_e)` and writes the fake-quantized values back into
/// a new epitome.
///
/// This is the full §4.2 pipeline: choose granularity, optionally weight
/// ranges by the epitome's repetition map, quantize, report.
///
/// # Errors
///
/// Propagates estimator and shape errors.
pub fn quantize_epitome(
    epitome: &Epitome,
    bits: u8,
    granularity: QuantGranularity,
    range: &RangeEstimator,
) -> Result<(Epitome, QuantReport), QuantError> {
    let shape = epitome.spec().shape();
    let (rows_e, cout_e) = (shape.matrix_rows(), shape.cout);
    // Flatten epitome and its repetition map to matrix form. Row index of
    // element (co, ci, y, x) is (ci*h + y)*w + x, column is co.
    let to_matrix = |t: &Tensor| -> Tensor {
        Tensor::from_fn(&[rows_e, cout_e], |idx| {
            let (row, co) = (idx[0], idx[1]);
            let x = row % shape.w;
            let y = (row / shape.w) % shape.h;
            let ci = row / (shape.w * shape.h);
            t.at(&[co, ci, y, x])
        })
    };
    let matrix = to_matrix(epitome.tensor());
    let needs_reps = matches!(range, RangeEstimator::OverlapWeighted { .. });
    let reps_matrix = if needs_reps {
        Some(to_matrix(&epitome.repetition_map()))
    } else {
        None
    };

    let (tile_rows, tile_cols) = match granularity {
        QuantGranularity::PerTensor => (rows_e, cout_e),
        QuantGranularity::PerCrossbar { rows, cols } => (rows, cols),
    };
    let (qmatrix, rep) = quantize_per_crossbar(
        &matrix,
        reps_matrix.as_ref(),
        bits,
        tile_rows,
        tile_cols,
        range,
    )?;

    // Scatter back into epitome layout.
    let qdata = Tensor::from_fn(&shape.dims(), |idx| {
        let (co, ci, y, x) = (idx[0], idx[1], idx[2], idx[3]);
        let row = (ci * shape.h + y) * shape.w + x;
        qmatrix.at(&[row, co])
    });
    let mut q = epitome.clone();
    q.set_tensor(qdata)?;
    Ok((q, rep))
}

#[cfg(test)]
mod tests {
    use super::*;
    use epim_core::{ConvShape, EpitomeShape, EpitomeSpec};
    use epim_tensor::{init, rng};

    fn random_epitome(seed: u64) -> Epitome {
        let spec =
            EpitomeSpec::new(ConvShape::new(16, 18, 3, 3), EpitomeShape::new(8, 10, 2, 2)).unwrap();
        let mut r = rng::seeded(seed);
        let data = init::uniform(&spec.shape().dims(), -1.0, 1.0, &mut r);
        Epitome::from_tensor(spec, data).unwrap()
    }

    #[test]
    fn per_crossbar_never_worse_than_per_tensor() {
        // DESIGN.md invariant: finer granularity cannot increase MSE.
        //
        // Deterministic construction (no RNG): how clearly per-tile scales
        // win depends on where zero falls in the whole-tensor grid, which a
        // random draw shifts arbitrarily. Two blocks with 50x different
        // dynamic ranges, both spanning their range exactly.
        let mut m = Tensor::zeros(&[8, 8]);
        for idx in 0..32usize {
            let frac = idx as f32 / 31.0;
            let (row, col) = (idx / 8, idx % 8);
            m.set(&[row, col], -0.1 + 0.2 * frac).unwrap();
            m.set(&[row + 4, col], -5.0 + 10.0 * frac).unwrap();
        }
        let (_, whole) = quantize_per_crossbar(&m, None, 3, 8, 8, &RangeEstimator::MinMax).unwrap();
        let (_, tiled) = quantize_per_crossbar(&m, None, 3, 4, 8, &RangeEstimator::MinMax).unwrap();
        assert_eq!(whole.groups, 1);
        assert_eq!(tiled.groups, 2);
        assert!(
            tiled.mse <= whole.mse,
            "tiled {} whole {}",
            tiled.mse,
            whole.mse
        );
        assert!(
            tiled.mse < whole.mse * 0.5,
            "per-crossbar should win clearly here"
        );
    }

    #[test]
    fn group_count_matches_tiling() {
        let m = Tensor::ones(&[10, 10]);
        let (_, r) = quantize_per_crossbar(&m, None, 4, 4, 4, &RangeEstimator::MinMax).unwrap();
        assert_eq!(r.groups, 9); // ceil(10/4)^2
    }

    #[test]
    fn invalid_inputs_rejected() {
        let m = Tensor::ones(&[4, 4]);
        assert!(quantize_per_crossbar(&m, None, 4, 0, 4, &RangeEstimator::MinMax).is_err());
        let v = Tensor::ones(&[4]);
        assert!(quantize_per_crossbar(&v, None, 4, 2, 2, &RangeEstimator::MinMax).is_err());
        let reps = Tensor::ones(&[2, 2]);
        assert!(quantize_per_crossbar(&m, Some(&reps), 4, 2, 2, &RangeEstimator::MinMax).is_err());
    }

    #[test]
    fn quantize_epitome_preserves_shape_and_reduces_precision() {
        let e = random_epitome(1);
        let (q, rep) =
            quantize_epitome(&e, 3, QuantGranularity::PerTensor, &RangeEstimator::MinMax).unwrap();
        assert_eq!(q.tensor().shape(), e.tensor().shape());
        assert!(rep.mse > 0.0);
        assert!(rep.sqnr_db.is_finite());
        // 9-bit should be much closer than 3-bit.
        let (_, rep9) =
            quantize_epitome(&e, 9, QuantGranularity::PerTensor, &RangeEstimator::MinMax).unwrap();
        assert!(rep9.mse < rep.mse / 10.0);
    }

    #[test]
    fn table2_ablation_ordering_on_mse() {
        // The ablation of Table 2, at the weight-error level: naive
        // per-tensor >= per-crossbar >= per-crossbar + overlap weighting
        // is not guaranteed elementwise for the overlap step (it trades
        // range coverage for overlap fidelity), but per-crossbar must not
        // be worse than naive, and the overlap method must stay sane.
        let e = random_epitome(2);
        let naive = quantize_epitome(&e, 3, QuantGranularity::PerTensor, &RangeEstimator::MinMax)
            .unwrap()
            .1;
        let xbar = quantize_epitome(
            &e,
            3,
            QuantGranularity::PerCrossbar { rows: 16, cols: 4 },
            &RangeEstimator::MinMax,
        )
        .unwrap()
        .1;
        let overlap = quantize_epitome(
            &e,
            3,
            QuantGranularity::PerCrossbar { rows: 16, cols: 4 },
            &RangeEstimator::overlap_default(),
        )
        .unwrap()
        .1;
        assert!(
            xbar.mse <= naive.mse * 1.10,
            "xbar {} naive {}",
            xbar.mse,
            naive.mse
        );
        assert!(overlap.mse.is_finite() && overlap.mse > 0.0);
        assert!(xbar.groups > naive.groups);
        assert_eq!(overlap.groups, xbar.groups);
    }

    #[test]
    fn overlap_weighting_reduces_error_on_repeated_elements() {
        // The point of Eq. 4-5: error weighted by repetition count should
        // shrink, because the range hugs the overlap region.
        let e = random_epitome(3);
        let reps = e.repetition_map();
        assert!(reps.max() > reps.min());
        let weighted_mse = |q: &Epitome| -> f64 {
            let diff = q.tensor().sub(e.tensor()).unwrap();
            let num: f64 = diff
                .data()
                .iter()
                .zip(reps.data())
                .map(|(&d, &c)| (d * d * c) as f64)
                .sum();
            num / reps.sum() as f64
        };
        let (q_mm, _) = quantize_epitome(
            &e,
            3,
            QuantGranularity::PerCrossbar { rows: 8, cols: 4 },
            &RangeEstimator::MinMax,
        )
        .unwrap();
        let (q_ov, _) = quantize_epitome(
            &e,
            3,
            QuantGranularity::PerCrossbar { rows: 8, cols: 4 },
            &RangeEstimator::overlap_default(),
        )
        .unwrap();
        // Compare repetition-weighted error: overlap-aware should not be
        // worse (usually strictly better).
        assert!(
            weighted_mse(&q_ov) <= weighted_mse(&q_mm) * 1.05,
            "ov {} mm {}",
            weighted_mse(&q_ov),
            weighted_mse(&q_mm)
        );
    }

    #[test]
    fn quantized_epitome_reconstruction_error_bounded() {
        // Quantization error on the epitome translates to bounded error on
        // the reconstructed convolution (same values, just repeated).
        let e = random_epitome(4);
        let (q, rep) = quantize_epitome(
            &e,
            5,
            QuantGranularity::PerCrossbar { rows: 16, cols: 8 },
            &RangeEstimator::MinMax,
        )
        .unwrap();
        let w = e.reconstruct().unwrap();
        let wq = q.reconstruct().unwrap();
        let w_mse = w.mse(&wq).unwrap() as f64;
        // Reconstruction MSE is a repetition-weighted average of epitome
        // MSE; with max repetition m it cannot exceed m * epitome MSE.
        let max_rep = e.repetition_map().max() as f64;
        assert!(w_mse <= rep.mse * max_rep + 1e-9);
    }
}
