//! HAWQ-style mixed-precision bit allocation (used for the paper's `W3mp`
//! rows).
//!
//! HAWQ ranks layers by Hessian-trace sensitivity and gives sensitive
//! layers more bits. Offline we cannot compute ImageNet Hessians, so
//! [`sensitivity_proxy`] supplies an analytic curvature proxy: the total
//! squared perturbation that low-bit quantization would inject into the
//! reconstructed convolution, i.e. repetition-weighted quantization error
//! times fan-out. The allocation mechanics are HAWQ's.

use crate::{QuantError, QuantGranularity, Quantizer, RangeEstimator};
use epim_core::Epitome;
use serde::{Deserialize, Serialize};

/// Sensitivity proxy for one epitome layer at `low_bits`.
///
/// Defined as the repetition-weighted total squared quantization error of
/// the epitome at `low_bits` — an estimate of how much loss curvature the
/// layer would see from aggressive quantization. Monotone in the paper's
/// sense: layers whose weights are hard to represent at 3 bits rank high
/// and receive 5 bits.
///
/// # Errors
///
/// Propagates quantizer fitting errors.
pub fn sensitivity_proxy(epitome: &Epitome, low_bits: u8) -> Result<f64, QuantError> {
    let (q, _) = crate::quantize_epitome(
        epitome,
        low_bits,
        QuantGranularity::PerTensor,
        &RangeEstimator::MinMax,
    )?;
    let reps = epitome.repetition_map();
    let diff = q.tensor().sub(epitome.tensor())?;
    let total: f64 = diff
        .data()
        .iter()
        .zip(reps.data())
        .map(|(&d, &c)| (d as f64 * d as f64) * c as f64)
        .sum();
    Ok(total)
}

/// A per-layer bit assignment produced by [`MixedPrecision::allocate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitAllocation {
    /// Bits per layer, parallel to the allocator inputs.
    pub bits: Vec<u8>,
    /// Average bits weighted by layer parameter counts.
    pub avg_bits: f64,
}

impl BitAllocation {
    /// Number of layers at the high bit width.
    pub fn high_count(&self, high_bits: u8) -> usize {
        self.bits.iter().filter(|&&b| b == high_bits).count()
    }
}

/// The mixed-precision allocator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixedPrecision {
    /// Bit width for insensitive layers (paper: 3).
    pub low_bits: u8,
    /// Bit width for sensitive layers (paper: 5 — "3-5 bit" rows).
    pub high_bits: u8,
    /// Parameter-weighted average bit budget the allocation must respect.
    pub budget_avg_bits: f64,
}

impl MixedPrecision {
    /// Creates an allocator.
    pub fn new(low_bits: u8, high_bits: u8, budget_avg_bits: f64) -> Self {
        MixedPrecision {
            low_bits,
            high_bits,
            budget_avg_bits,
        }
    }

    /// The paper's `W3mp` setting: 3/5-bit mix with an average budget of
    /// 3.5 bits.
    pub fn w3mp() -> Self {
        MixedPrecision::new(3, 5, 3.5)
    }

    /// Allocates bits to layers given `(sensitivity, params)` pairs.
    ///
    /// Greedy HAWQ-style: all layers start at `low_bits`; layers are
    /// promoted to `high_bits` in order of decreasing sensitivity **per
    /// parameter** while the parameter-weighted average stays within
    /// budget.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidParameter`] if inputs are empty,
    /// lengths differ, bit widths are inverted, or the budget is below
    /// `low_bits`.
    pub fn allocate(
        &self,
        sensitivities: &[f64],
        params: &[usize],
    ) -> Result<BitAllocation, QuantError> {
        if sensitivities.is_empty() || sensitivities.len() != params.len() {
            return Err(QuantError::invalid(
                "sensitivities/params length mismatch or empty",
            ));
        }
        if self.low_bits == 0 || self.high_bits <= self.low_bits {
            return Err(QuantError::invalid("need 0 < low_bits < high_bits"));
        }
        if self.budget_avg_bits < self.low_bits as f64 {
            return Err(QuantError::invalid("budget below low_bits is infeasible"));
        }
        let total_params: f64 = params.iter().map(|&p| p as f64).sum();
        if total_params == 0.0 {
            return Err(QuantError::invalid("all layers have zero parameters"));
        }
        let mut bits = vec![self.low_bits; sensitivities.len()];
        // Rank by sensitivity per parameter (promote cheap, sensitive
        // layers first).
        let mut order: Vec<usize> = (0..sensitivities.len()).collect();
        order.sort_by(|&a, &b| {
            let ka = sensitivities[a] / (params[a].max(1) as f64);
            let kb = sensitivities[b] / (params[b].max(1) as f64);
            kb.partial_cmp(&ka).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut weighted_bits = self.low_bits as f64 * total_params;
        for &i in &order {
            let delta = (self.high_bits - self.low_bits) as f64 * params[i] as f64;
            if (weighted_bits + delta) / total_params <= self.budget_avg_bits + 1e-12 {
                bits[i] = self.high_bits;
                weighted_bits += delta;
            }
        }
        Ok(BitAllocation {
            bits,
            avg_bits: weighted_bits / total_params,
        })
    }
}

/// Fits a plain per-tensor quantizer at each layer's allocated bits —
/// convenience for applying an allocation.
///
/// # Errors
///
/// Propagates fitting errors.
pub fn quantizers_for_allocation(
    tensors: &[&epim_tensor::Tensor],
    allocation: &BitAllocation,
) -> Result<Vec<Quantizer>, QuantError> {
    if tensors.len() != allocation.bits.len() {
        return Err(QuantError::invalid("allocation length mismatch"));
    }
    tensors
        .iter()
        .zip(&allocation.bits)
        .map(|(t, &b)| Quantizer::fit(t, b, &RangeEstimator::MinMax))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use epim_core::{ConvShape, EpitomeShape, EpitomeSpec};
    use epim_tensor::{init, rng, Tensor};

    #[test]
    fn budget_respected_and_sensitive_layers_promoted() {
        let mp = MixedPrecision::new(3, 5, 4.0);
        // Layer 1 is far more sensitive per parameter.
        let alloc = mp
            .allocate(&[1.0, 100.0, 1.0, 1.0], &[100, 100, 100, 100])
            .unwrap();
        assert_eq!(alloc.bits[1], 5);
        assert!(alloc.avg_bits <= 4.0 + 1e-9);
        // Budget of 4 with 3/5 mix allows exactly half the params at 5.
        assert_eq!(alloc.high_count(5), 2);
    }

    #[test]
    fn tight_budget_keeps_everything_low() {
        let mp = MixedPrecision::new(3, 5, 3.0);
        let alloc = mp.allocate(&[5.0, 1.0], &[10, 10]).unwrap();
        assert!(alloc.bits.iter().all(|&b| b == 3));
        assert!((alloc.avg_bits - 3.0).abs() < 1e-9);
    }

    #[test]
    fn loose_budget_promotes_everything() {
        let mp = MixedPrecision::new(3, 5, 5.0);
        let alloc = mp.allocate(&[1.0, 2.0, 3.0], &[7, 11, 13]).unwrap();
        assert!(alloc.bits.iter().all(|&b| b == 5));
    }

    #[test]
    fn uneven_params_promotion_prefers_cheap_sensitive() {
        let mp = MixedPrecision::new(3, 5, 3.5);
        // Equal sensitivity; small layer is cheaper to promote per unit.
        let alloc = mp.allocate(&[10.0, 10.0], &[10, 1000]).unwrap();
        assert_eq!(alloc.bits[0], 5);
        assert_eq!(alloc.bits[1], 3);
    }

    #[test]
    fn invalid_inputs() {
        let mp = MixedPrecision::new(3, 5, 3.5);
        assert!(mp.allocate(&[], &[]).is_err());
        assert!(mp.allocate(&[1.0], &[1, 2]).is_err());
        assert!(MixedPrecision::new(5, 3, 4.0)
            .allocate(&[1.0], &[1])
            .is_err());
        assert!(MixedPrecision::new(3, 5, 2.0)
            .allocate(&[1.0], &[1])
            .is_err());
        assert!(mp.allocate(&[1.0], &[0]).is_err());
    }

    #[test]
    fn sensitivity_proxy_ranks_wide_distributions_higher() {
        // A layer with heavy-tailed weights is harder to quantize at 3
        // bits, so its proxy must exceed a narrow layer of equal size.
        let spec = |seed: u64, scale: f32| {
            let s = EpitomeSpec::new(ConvShape::new(8, 9, 3, 3), EpitomeShape::new(4, 5, 2, 2))
                .unwrap();
            let mut r = rng::seeded(seed);
            let mut data = init::uniform(&s.shape().dims(), -0.1, 0.1, &mut r);
            // Inject outliers scaled by `scale`.
            let n = data.len();
            data.data_mut()[0] = scale;
            data.data_mut()[n - 1] = -scale;
            Epitome::from_tensor(s, data).unwrap()
        };
        let narrow = sensitivity_proxy(&spec(1, 0.1), 3).unwrap();
        let wide = sensitivity_proxy(&spec(1, 5.0), 3).unwrap();
        assert!(wide > narrow * 10.0, "wide {wide} narrow {narrow}");
    }

    #[test]
    fn quantizers_for_allocation_applies_bits() {
        let t1 = Tensor::from_vec(vec![-1.0, 1.0], &[2]).unwrap();
        let t2 = Tensor::from_vec(vec![-2.0, 2.0], &[2]).unwrap();
        let alloc = BitAllocation {
            bits: vec![3, 5],
            avg_bits: 4.0,
        };
        let qs = quantizers_for_allocation(&[&t1, &t2], &alloc).unwrap();
        assert_eq!(qs[0].bits(), 3);
        assert_eq!(qs[1].bits(), 5);
        assert!(quantizers_for_allocation(&[&t1], &alloc).is_err());
    }

    #[test]
    fn w3mp_preset() {
        let mp = MixedPrecision::w3mp();
        assert_eq!((mp.low_bits, mp.high_bits), (3, 5));
        assert!((mp.budget_avg_bits - 3.5).abs() < 1e-12);
    }
}
