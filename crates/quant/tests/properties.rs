//! Property-based tests for the quantization invariants (DESIGN.md §5).

use epim_core::{ConvShape, Epitome, EpitomeShape, EpitomeSpec};
use epim_quant::{
    quantize_epitome, quantize_per_crossbar, MixedPrecision, QuantGranularity, Quantizer,
    RangeEstimator,
};
use epim_tensor::{init, rng, Tensor};
use proptest::prelude::*;

proptest! {
    /// Round-trip error of in-range values never exceeds half a step.
    #[test]
    fn roundtrip_half_step(bits in 1u8..=12, lo in -10.0f32..0.0, span in 0.01f32..20.0,
                           seed in 0u64..10_000) {
        let hi = lo + span;
        let q = Quantizer::from_range(bits, lo, hi).unwrap();
        let mut r = rng::seeded(seed);
        let t = init::uniform(&[256], lo, hi, &mut r);
        let deq = q.fake_quant(&t);
        // Half a step plus f32 arithmetic noise proportional to the value
        // magnitude (matters at 12 bits with offsets near ±10).
        let tol = q.step() / 2.0 * (1.0 + 1e-4) + lo.abs().max(hi.abs()) * 4.0 * f32::EPSILON;
        prop_assert!(t.allclose(&deq, tol).unwrap());
    }

    /// Quantization is idempotent: fake-quant of fake-quant is identity.
    #[test]
    fn fake_quant_idempotent(bits in 1u8..=10, seed in 0u64..10_000) {
        let mut r = rng::seeded(seed);
        let t = init::uniform(&[128], -1.0, 1.0, &mut r);
        let q = Quantizer::fit(&t, bits, &RangeEstimator::MinMax).unwrap();
        let once = q.fake_quant(&t);
        let twice = q.fake_quant(&once);
        prop_assert!(once.allclose(&twice, 1e-6).unwrap());
    }

    /// MSE is monotone non-increasing in bit width.
    #[test]
    fn mse_monotone_in_bits(seed in 0u64..10_000) {
        let mut r = rng::seeded(seed);
        let t = init::uniform(&[512], -2.0, 2.0, &mut r);
        let mut prev = f32::INFINITY;
        for bits in [2u8, 4, 6, 8, 10] {
            let q = Quantizer::fit(&t, bits, &RangeEstimator::MinMax).unwrap();
            let m = q.mse(&t);
            prop_assert!(m <= prev + 1e-9, "bits {} mse {} prev {}", bits, m, prev);
            prev = m;
        }
    }

    /// Overlap-weighted ranges always stay inside the min/max envelope
    /// when w1 + w2 = 1.
    #[test]
    fn overlap_range_within_envelope(w1 in 0.0f32..=1.0, seed in 0u64..10_000) {
        let spec = EpitomeSpec::new(
            ConvShape::new(6, 9, 1, 1),
            EpitomeShape::new(3, 5, 1, 1),
        ).unwrap();
        let mut r = rng::seeded(seed);
        let data = init::uniform(&spec.shape().dims(), -3.0, 3.0, &mut r);
        let epi = Epitome::from_tensor(spec, data).unwrap();
        let reps = epi.repetition_map();
        let est = RangeEstimator::OverlapWeighted { w1, w2: 1.0 - w1 };
        let (a, b) = est.estimate(epi.tensor(), Some(&reps)).unwrap();
        prop_assert!(a >= epi.tensor().min() - 1e-5);
        prop_assert!(b <= epi.tensor().max() + 1e-5);
        prop_assert!(a <= b);
    }

    /// Per-crossbar granularity does not meaningfully increase MSE versus
    /// per-tensor: every tile's range is a subset of the whole range, so
    /// each tile's step — and therefore its worst-case element error — is
    /// no larger. Sample MSE can still fluctuate slightly with grid
    /// alignment, hence the small statistical tolerance.
    #[test]
    fn per_crossbar_no_worse(bits in 2u8..=6, seed in 0u64..10_000,
                             tr in 2usize..=8, tc in 2usize..=8) {
        let mut r = rng::seeded(seed);
        let m = init::uniform(&[16, 16], -1.0, 1.0, &mut r);
        let (qw, whole) = quantize_per_crossbar(&m, None, bits, 16, 16,
            &RangeEstimator::MinMax).unwrap();
        let (qt, tiled) = quantize_per_crossbar(&m, None, bits, tr, tc,
            &RangeEstimator::MinMax).unwrap();
        prop_assert!(tiled.mse <= whole.mse * 1.15 + 1e-12,
            "tiled {} whole {}", tiled.mse, whole.mse);
        // The worst-case bound is strict: the tiled max error never
        // exceeds the per-tensor half step.
        let whole_step = (m.max() - m.min()) / ((1u32 << bits) - 1) as f32;
        let max_err_tiled = qt.sub(&m).unwrap().abs_max();
        let max_err_whole = qw.sub(&m).unwrap().abs_max();
        prop_assert!(max_err_tiled <= whole_step / 2.0 * 1.0001);
        prop_assert!(max_err_whole <= whole_step / 2.0 * 1.0001);
    }

    /// Quantizing an epitome preserves its shape and the quantized tensor
    /// only holds representable values (each tile's grid).
    #[test]
    fn epitome_quant_shape_stable(bits in 2u8..=8, seed in 0u64..10_000) {
        let spec = EpitomeSpec::new(
            ConvShape::new(8, 8, 3, 3),
            EpitomeShape::new(4, 4, 2, 2),
        ).unwrap();
        let mut r = rng::seeded(seed);
        let data = init::uniform(&spec.shape().dims(), -1.0, 1.0, &mut r);
        let epi = Epitome::from_tensor(spec, data).unwrap();
        let (q, rep) = quantize_epitome(
            &epi, bits,
            QuantGranularity::PerCrossbar { rows: 8, cols: 4 },
            &RangeEstimator::MinMax,
        ).unwrap();
        prop_assert_eq!(q.tensor().shape(), epi.tensor().shape());
        prop_assert!(rep.mse.is_finite());
        prop_assert!(rep.groups >= 1);
    }

    /// Mixed-precision allocation always respects the budget and assigns
    /// only the two configured bit widths.
    #[test]
    fn mixed_precision_budget(
        n in 1usize..20,
        budget_frac in 0.0f64..=1.0,
        seed in 0u64..10_000,
    ) {
        let mut r = rng::seeded(seed);
        let sens: Vec<f64> = (0..n).map(|_| epim_tensor::rng::uniform(&mut r, 0.0, 10.0) as f64).collect();
        let params: Vec<usize> = (0..n).map(|_| 1 + (epim_tensor::rng::uniform(&mut r, 0.0, 1000.0) as usize)).collect();
        let budget = 3.0 + 2.0 * budget_frac;
        let mp = MixedPrecision::new(3, 5, budget);
        let alloc = mp.allocate(&sens, &params).unwrap();
        prop_assert!(alloc.avg_bits <= budget + 1e-9);
        prop_assert!(alloc.bits.iter().all(|&b| b == 3 || b == 5));
        // avg consistency.
        let total: f64 = params.iter().map(|&p| p as f64).sum();
        let avg: f64 = alloc.bits.iter().zip(&params)
            .map(|(&b, &p)| b as f64 * p as f64).sum::<f64>() / total;
        prop_assert!((avg - alloc.avg_bits).abs() < 1e-9);
    }

    /// Degenerate constant tensors survive every pipeline exactly.
    #[test]
    fn constant_tensor_exact_everywhere(bits in 1u8..=8, v in -5.0f32..5.0) {
        let t = Tensor::full(&[32], v);
        let q = Quantizer::fit(&t, bits, &RangeEstimator::MinMax).unwrap();
        prop_assert_eq!(q.mse(&t), 0.0);
    }
}
