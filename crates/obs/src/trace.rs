//! Always-on span tracing: bounded per-lane event rings with a
//! chrome://tracing exporter.
//!
//! ## Design
//!
//! A [`TraceRing`] is a fixed set of **lanes** (one per recording thread;
//! scheduler workers, pool workers and application threads each get their
//! own via a thread-local assignment), each a bounded ring of fixed-size
//! event slots. Recording is **lock-free and allocation-free**: a slot is
//! claimed with one `fetch_add` on the lane head and filled through plain
//! atomic stores, guarded by a per-slot seqlock generation word so readers
//! (the exporters, which run concurrently with serving) skip torn slots
//! instead of blocking writers. When a lane wraps, the **oldest events are
//! overwritten first** and the count of overwritten events is reported by
//! [`TraceRing::dropped`].
//!
//! When tracing is disabled (the default), the hot-path cost is a single
//! relaxed atomic load per instrumentation site: [`start`] returns without
//! reading the clock and [`span`]/[`instant`] return without touching the
//! ring. Enable with [`set_enabled`] or `EPIM_TRACE=1`.
//!
//! Timestamps are monotonic nanoseconds since the process's first trace
//! query (a shared `Instant` epoch), so spans from different threads
//! order correctly in one timeline.

use std::sync::atomic::{fence, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Tenant tag for events not attributable to a tenant (direct plan calls,
/// pool-worker sweep events).
pub const TENANT_NONE: u32 = u32::MAX;

/// Lanes in the process-global ring (threads beyond this share lanes).
const GLOBAL_LANES: usize = 32;
/// Events retained per lane in the process-global ring.
const GLOBAL_CAPACITY: usize = 4096;

/// What a trace event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// A request burst entered a tenant queue (instant; `a` = requests,
    /// `b` = queue depth after).
    Enqueue = 0,
    /// Requests rejected by flow control (instant; `a` = requests,
    /// `b` = queue capacity).
    Shed = 1,
    /// A scheduler thread coalescing one request group (span; `a` = group
    /// size).
    Coalesce = 2,
    /// One group executing end to end (span; `a` = group size).
    Group = 3,
    /// One plan stage executing (span; `stage` = stage index, `a` = packed
    /// op kind + stacked images, `b` = output-slot bytes).
    Stage = 4,
    /// One DAC quantization sweep over a pixel tile (span; `a` =
    /// elements quantized).
    DacSweep = 5,
    /// ADC readout quantization of one pixel tile (instant; `a` = sweeps,
    /// `b` = elements).
    AdcSweep = 6,
}

impl SpanKind {
    fn from_u8(v: u8) -> Option<SpanKind> {
        Some(match v {
            0 => SpanKind::Enqueue,
            1 => SpanKind::Shed,
            2 => SpanKind::Coalesce,
            3 => SpanKind::Group,
            4 => SpanKind::Stage,
            5 => SpanKind::DacSweep,
            6 => SpanKind::AdcSweep,
            _ => return None,
        })
    }

    /// Stable lowercase name (used as the chrome-trace event name).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Enqueue => "enqueue",
            SpanKind::Shed => "shed",
            SpanKind::Coalesce => "coalesce",
            SpanKind::Group => "group",
            SpanKind::Stage => "stage",
            SpanKind::DacSweep => "dac_sweep",
            SpanKind::AdcSweep => "adc_sweep",
        }
    }

    /// Whether this kind is a duration span (chrome `ph:"X"`) rather than
    /// an instant event (`ph:"i"`).
    pub fn is_span(self) -> bool {
        matches!(
            self,
            SpanKind::Coalesce | SpanKind::Group | SpanKind::Stage | SpanKind::DacSweep
        )
    }
}

/// The op kind packed into a [`SpanKind::Stage`] payload (display only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum StageOpKind {
    /// Unclassified stage.
    Other = 0,
    /// Dense convolution.
    Conv = 1,
    /// Epitome crossbar op on the PIM data path.
    Epitome = 2,
    /// Elementwise ReLU.
    Relu = 3,
    /// Max pooling.
    MaxPool = 4,
    /// Global average pooling.
    GlobalAvgPool = 5,
    /// Fully-connected classifier head.
    Linear = 6,
    /// Residual addition.
    Add = 7,
    /// A whole single-layer data-path execution.
    DataPath = 8,
}

impl StageOpKind {
    fn from_u8(v: u8) -> StageOpKind {
        match v {
            1 => StageOpKind::Conv,
            2 => StageOpKind::Epitome,
            3 => StageOpKind::Relu,
            4 => StageOpKind::MaxPool,
            5 => StageOpKind::GlobalAvgPool,
            6 => StageOpKind::Linear,
            7 => StageOpKind::Add,
            8 => StageOpKind::DataPath,
            _ => StageOpKind::Other,
        }
    }

    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            StageOpKind::Other => "other",
            StageOpKind::Conv => "conv2d",
            StageOpKind::Epitome => "epitome",
            StageOpKind::Relu => "relu",
            StageOpKind::MaxPool => "max_pool",
            StageOpKind::GlobalAvgPool => "global_avg_pool",
            StageOpKind::Linear => "linear",
            StageOpKind::Add => "add",
            StageOpKind::DataPath => "datapath",
        }
    }
}

/// Packs a stage span's `a` payload: op kind in the low byte, stacked
/// image count above it.
pub fn pack_stage_payload(op: StageOpKind, images: u64) -> u64 {
    (images << 8) | op as u64
}

/// Unpacks a stage span's `a` payload into `(op kind, stacked images)`.
pub fn unpack_stage_payload(a: u64) -> (StageOpKind, u64) {
    (StageOpKind::from_u8((a & 0xFF) as u8), a >> 8)
}

/// One decoded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The lane (≈ thread) that recorded the event.
    pub lane: usize,
    /// What happened.
    pub kind: SpanKind,
    /// Tenant index, or [`TENANT_NONE`].
    pub tenant: u32,
    /// Stage index for [`SpanKind::Stage`], 0 otherwise.
    pub stage: u32,
    /// Monotonic start timestamp, nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
    /// Kind-specific payload (see [`SpanKind`]).
    pub a: u64,
    /// Kind-specific payload (see [`SpanKind`]).
    pub b: u64,
}

impl TraceEvent {
    /// End timestamp (`start_ns + dur_ns`).
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// One event slot: a seqlock generation word plus the event fields. All
/// fields are atomics, so a torn read can at worst surface a garbled
/// event to a reader that raced a full ring wraparound — never undefined
/// behavior — and the generation check discards it.
struct Slot {
    /// `2*gen + 1` while the claiming writer fills the slot, `2*gen + 2`
    /// once generation `gen`'s event is complete.
    seq: AtomicU64,
    /// kind in bits 56..64, stage in bits 32..56, tenant in bits 0..32.
    meta: AtomicU64,
    start: AtomicU64,
    dur: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            start: AtomicU64::new(0),
            dur: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

struct Lane {
    /// Total events ever claimed on this lane (slot = `head % capacity`).
    head: AtomicU64,
    slots: Vec<Slot>,
}

/// A bounded, lock-free multi-lane trace event ring. See the
/// [module docs](self) for the recording protocol; the process-global
/// instance used by the runtime's instrumentation sites is [`global`].
pub struct TraceRing {
    lanes: Vec<Lane>,
    /// Slots per lane (power of two).
    capacity: u64,
    next_lane: AtomicUsize,
    labels: Mutex<Vec<String>>,
}

impl TraceRing {
    /// A ring with `lanes` lanes of `capacity` slots each (`capacity` is
    /// rounded up to a power of two, minimum 2).
    pub fn new(lanes: usize, capacity: usize) -> TraceRing {
        let capacity = capacity.next_power_of_two().max(2);
        let lanes = lanes.max(1);
        TraceRing {
            lanes: (0..lanes)
                .map(|_| Lane {
                    head: AtomicU64::new(0),
                    slots: (0..capacity).map(|_| Slot::new()).collect(),
                })
                .collect(),
            capacity: capacity as u64,
            next_lane: AtomicUsize::new(0),
            labels: Mutex::new((0..lanes).map(|i| format!("lane-{i}")).collect()),
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Events retained per lane.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Assigns the next free lane (wrapping once all are taken — writes
    /// stay safe because slots are claimed atomically) and labels it.
    pub fn register_lane(&self, label: impl Into<String>) -> usize {
        let lane = self.next_lane.fetch_add(1, Ordering::Relaxed) % self.lanes.len();
        self.labels.lock().expect("trace labels poisoned")[lane] = label.into();
        lane
    }

    /// The label of `lane`.
    pub fn label(&self, lane: usize) -> String {
        self.labels.lock().expect("trace labels poisoned")[lane].clone()
    }

    /// Records one event on `lane`. Lock-free: one `fetch_add` claims a
    /// slot (overwriting the lane's oldest event when full), atomic
    /// stores fill it. Callers on the hot path should gate on
    /// [`enabled`] first.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        lane: usize,
        kind: SpanKind,
        tenant: u32,
        stage: u32,
        start_ns: u64,
        dur_ns: u64,
        a: u64,
        b: u64,
    ) {
        let lane = &self.lanes[lane % self.lanes.len()];
        let idx = lane.head.fetch_add(1, Ordering::Relaxed);
        let gen = idx / self.capacity;
        let slot = &lane.slots[(idx & (self.capacity - 1)) as usize];
        // Seqlock write: mark the slot in-progress for this generation,
        // fill the fields, then publish. The release fence orders the
        // odd marker before the field stores; the final release store
        // orders the fields before the even marker.
        slot.seq.store(2 * gen + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        let meta =
            ((kind as u64) << 56) | ((u64::from(stage) & 0xFF_FFFF) << 32) | u64::from(tenant);
        slot.meta.store(meta, Ordering::Relaxed);
        slot.start.store(start_ns, Ordering::Relaxed);
        slot.dur.store(dur_ns, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.seq.store(2 * gen + 2, Ordering::Release);
    }

    /// Events overwritten (oldest-first) on `lane` since construction.
    pub fn dropped(&self, lane: usize) -> u64 {
        self.lanes[lane]
            .head
            .load(Ordering::Relaxed)
            .saturating_sub(self.capacity)
    }

    /// The retained events of `lane`, oldest first. Events being
    /// overwritten by concurrent writers while we read are skipped (the
    /// seqlock generation check), never blocked on.
    pub fn events(&self, lane_idx: usize) -> Vec<TraceEvent> {
        let lane = &self.lanes[lane_idx];
        let head = lane.head.load(Ordering::Acquire);
        let first = head.saturating_sub(self.capacity);
        let mut out = Vec::with_capacity((head - first) as usize);
        for idx in first..head {
            let gen = idx / self.capacity;
            let want = 2 * gen + 2;
            let slot = &lane.slots[(idx & (self.capacity - 1)) as usize];
            if slot.seq.load(Ordering::Acquire) != want {
                continue;
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            let start_ns = slot.start.load(Ordering::Relaxed);
            let dur_ns = slot.dur.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != want {
                continue;
            }
            let Some(kind) = SpanKind::from_u8((meta >> 56) as u8) else {
                continue;
            };
            out.push(TraceEvent {
                lane: lane_idx,
                kind,
                tenant: meta as u32,
                stage: ((meta >> 32) & 0xFF_FFFF) as u32,
                start_ns,
                dur_ns,
                a,
                b,
            });
        }
        out
    }

    /// Every lane's retained events (lane-major, oldest first per lane).
    pub fn all_events(&self) -> Vec<TraceEvent> {
        (0..self.lanes.len()).flat_map(|l| self.events(l)).collect()
    }

    /// Resets every lane (heads, slots, drop counts). Not synchronized
    /// with concurrent writers; intended for tests and benchmarks on a
    /// quiesced ring.
    pub fn clear(&self) {
        for lane in &self.lanes {
            lane.head.store(0, Ordering::Relaxed);
            for slot in &lane.slots {
                slot.seq.store(0, Ordering::Relaxed);
            }
        }
    }

    /// Renders the retained events as chrome://tracing "trace event
    /// format" JSON (load via `chrome://tracing` or Perfetto): one thread
    /// lane per ring lane, `ph:"X"` duration spans and `ph:"i"` instants,
    /// tenant-tagged spans colored by tenant. Timestamps are microseconds
    /// (floats), so nanosecond durations survive.
    pub fn export_chrome_trace(&self) -> String {
        use serde::Value;
        // Chrome's reserved color names, cycled per tenant.
        const PALETTE: [&str; 8] = [
            "thread_state_running",
            "rail_response",
            "rail_animation",
            "rail_idle",
            "rail_load",
            "cq_build_passed",
            "cq_build_attempt_running",
            "thread_state_iowait",
        ];
        let us = |ns: u64| ns as f64 / 1000.0;
        let mut events: Vec<Value> = Vec::new();
        for lane in 0..self.lanes.len() {
            let lane_events = self.events(lane);
            if lane_events.is_empty() {
                continue;
            }
            events.push(Value::Object(vec![
                ("ph".into(), Value::String("M".into())),
                ("pid".into(), Value::U64(1)),
                ("tid".into(), Value::U64(lane as u64)),
                ("name".into(), Value::String("thread_name".into())),
                (
                    "args".into(),
                    Value::Object(vec![("name".into(), Value::String(self.label(lane)))]),
                ),
            ]));
            for ev in lane_events {
                let name = match ev.kind {
                    SpanKind::Stage => {
                        let (op, _) = unpack_stage_payload(ev.a);
                        format!("stage{} {}", ev.stage, op.as_str())
                    }
                    kind => kind.name().to_string(),
                };
                let mut args: Vec<(String, Value)> = Vec::new();
                if ev.tenant != TENANT_NONE {
                    args.push(("tenant".into(), Value::U64(u64::from(ev.tenant))));
                }
                match ev.kind {
                    SpanKind::Enqueue => {
                        args.push(("requests".into(), Value::U64(ev.a)));
                        args.push(("queue_depth".into(), Value::U64(ev.b)));
                    }
                    SpanKind::Shed => {
                        args.push(("requests".into(), Value::U64(ev.a)));
                        args.push(("capacity".into(), Value::U64(ev.b)));
                    }
                    SpanKind::Coalesce | SpanKind::Group => {
                        args.push(("batch".into(), Value::U64(ev.a)));
                    }
                    SpanKind::Stage => {
                        let (_, images) = unpack_stage_payload(ev.a);
                        args.push(("images".into(), Value::U64(images)));
                        args.push(("arena_bytes".into(), Value::U64(ev.b)));
                    }
                    SpanKind::DacSweep => {
                        args.push(("elements".into(), Value::U64(ev.a)));
                    }
                    SpanKind::AdcSweep => {
                        args.push(("sweeps".into(), Value::U64(ev.a)));
                        args.push(("elements".into(), Value::U64(ev.b)));
                    }
                }
                let mut fields: Vec<(String, Value)> = vec![
                    (
                        "ph".into(),
                        Value::String(if ev.kind.is_span() { "X" } else { "i" }.into()),
                    ),
                    ("pid".into(), Value::U64(1)),
                    ("tid".into(), Value::U64(lane as u64)),
                    ("name".into(), Value::String(name)),
                    ("cat".into(), Value::String(ev.kind.name().into())),
                    ("ts".into(), Value::F64(us(ev.start_ns))),
                ];
                if ev.kind.is_span() {
                    fields.push(("dur".into(), Value::F64(us(ev.dur_ns))));
                } else {
                    // Instant scope: thread.
                    fields.push(("s".into(), Value::String("t".into())));
                }
                if ev.tenant != TENANT_NONE {
                    fields.push((
                        "cname".into(),
                        Value::String(PALETTE[ev.tenant as usize % PALETTE.len()].into()),
                    ));
                }
                fields.push(("args".into(), Value::Object(args)));
                events.push(Value::Object(fields));
            }
        }
        let doc = Value::Object(vec![
            ("displayTimeUnit".into(), Value::String("ms".into())),
            ("traceEvents".into(), Value::Array(events)),
        ]);
        serde_json::to_string(&doc).expect("trace serializes")
    }
}

// ---------------------------------------------------------------------------
// Process-global ring + hot-path recording API
// ---------------------------------------------------------------------------

/// 0 = uninitialized (consult `EPIM_TRACE`), 1 = disabled, 2 = enabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether tracing is currently enabled — one relaxed atomic load, the
/// only cost instrumentation sites pay when tracing is off.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_enabled(),
    }
}

#[cold]
fn init_enabled() -> bool {
    let on = std::env::var("EPIM_TRACE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    let _ = ENABLED.compare_exchange(
        0,
        if on { 2 } else { 1 },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    ENABLED.load(Ordering::Relaxed) == 2
}

/// Turns tracing on or off process-wide (overrides `EPIM_TRACE`).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The process-global trace ring the runtime's instrumentation records
/// into. Built lazily on first touch ([`enabled`] alone never builds it).
pub fn global() -> &'static TraceRing {
    static GLOBAL: OnceLock<TraceRing> = OnceLock::new();
    GLOBAL.get_or_init(|| TraceRing::new(GLOBAL_LANES, GLOBAL_CAPACITY))
}

/// Monotonic nanoseconds since the process trace epoch (never 0).
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos().max(1) as u64
}

thread_local! {
    /// This thread's lane in the global ring (`usize::MAX` = unassigned).
    static LANE: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// This thread's lane in the global ring, assigned (and labeled) on first
/// use: pool workers label by their `epim-parallel` worker index, other
/// threads by their thread name.
fn lane() -> usize {
    LANE.with(|l| {
        let v = l.get();
        if v != usize::MAX {
            return v;
        }
        let label = match epim_parallel::current_worker() {
            Some(i) => format!("epim-pool-{i}"),
            None => std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{:?}", std::thread::current().id())),
        };
        let v = global().register_lane(label);
        l.set(v);
        v
    })
}

/// Starts a span: returns the current timestamp when tracing is enabled,
/// `0` (no clock read) when disabled. Pass the result to [`span`].
#[inline]
pub fn start() -> u64 {
    if enabled() {
        now_ns()
    } else {
        0
    }
}

/// Finishes a span started with [`start`], recording it on this thread's
/// lane of the global ring. A `start_ns` of 0 (tracing was disabled at
/// start) records nothing.
#[inline]
pub fn span(kind: SpanKind, tenant: u32, stage: u32, start_ns: u64, a: u64, b: u64) {
    if start_ns == 0 || !enabled() {
        return;
    }
    let dur = now_ns().saturating_sub(start_ns);
    global().record(lane(), kind, tenant, stage, start_ns, dur, a, b);
}

/// Records an instant event on this thread's lane of the global ring
/// (no-op while disabled).
#[inline]
pub fn instant(kind: SpanKind, tenant: u32, a: u64, b: u64) {
    if !enabled() {
        return;
    }
    global().record(lane(), kind, tenant, 0, now_ns(), 0, a, b);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraparound_drops_oldest_first_and_counts() {
        let ring = TraceRing::new(1, 8);
        for i in 0..20u64 {
            ring.record(0, SpanKind::Group, 0, 0, 100 + i, 1, i, 0);
        }
        let events = ring.events(0);
        assert_eq!(events.len(), 8, "ring retains exactly its capacity");
        // The retained window is the newest 8 events, oldest first.
        let payloads: Vec<u64> = events.iter().map(|e| e.a).collect();
        assert_eq!(payloads, (12..20).collect::<Vec<u64>>());
        assert_eq!(ring.dropped(0), 12);
        // A fresh lane dropped nothing.
        let fresh = TraceRing::new(2, 8);
        fresh.record(1, SpanKind::Shed, 3, 0, 5, 0, 1, 2);
        assert_eq!(fresh.dropped(1), 0);
        assert_eq!(fresh.events(0).len(), 0);
    }

    #[test]
    fn events_decode_all_fields() {
        let ring = TraceRing::new(2, 16);
        ring.record(
            1,
            SpanKind::Stage,
            7,
            11,
            1000,
            250,
            pack_stage_payload(StageOpKind::Conv, 8),
            4096,
        );
        let ev = &ring.events(1)[0];
        assert_eq!(ev.lane, 1);
        assert_eq!(ev.kind, SpanKind::Stage);
        assert_eq!(ev.tenant, 7);
        assert_eq!(ev.stage, 11);
        assert_eq!(ev.start_ns, 1000);
        assert_eq!(ev.dur_ns, 250);
        assert_eq!(ev.end_ns(), 1250);
        let (op, images) = unpack_stage_payload(ev.a);
        assert_eq!(op, StageOpKind::Conv);
        assert_eq!(images, 8);
        assert_eq!(ev.b, 4096);
        // TENANT_NONE survives the meta packing.
        ring.record(0, SpanKind::DacSweep, TENANT_NONE, 0, 1, 1, 64, 0);
        assert_eq!(ring.events(0)[0].tenant, TENANT_NONE);
    }

    #[test]
    fn concurrent_writers_never_corrupt_readers() {
        use std::sync::Arc;
        let ring = Arc::new(TraceRing::new(2, 64));
        let writers: Vec<_> = (0..2)
            .map(|lane| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        ring.record(lane, SpanKind::Group, lane as u32, 0, i + 1, 1, i, i * 2);
                    }
                })
            })
            .collect();
        // Read concurrently: every decoded event must be internally
        // consistent (b == 2*a), torn slots skipped, never garbage.
        for _ in 0..50 {
            for lane in 0..2 {
                for ev in ring.events(lane) {
                    assert_eq!(ev.b, ev.a * 2, "torn event leaked through the seqlock");
                    assert_eq!(ev.tenant, lane as u32);
                }
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(ring.events(0).len(), 64);
        assert_eq!(ring.dropped(0), 10_000 - 64);
    }

    #[test]
    fn chrome_trace_round_trips_through_serde_json() {
        let ring = TraceRing::new(2, 16);
        ring.register_lane("epim-sched-0");
        ring.record(0, SpanKind::Coalesce, 0, 0, 1000, 500, 4, 0);
        ring.record(0, SpanKind::Group, 0, 0, 1600, 2000, 4, 0);
        ring.record(
            0,
            SpanKind::Stage,
            0,
            3,
            1700,
            800,
            pack_stage_payload(StageOpKind::Epitome, 4),
            512,
        );
        ring.record(1, SpanKind::Enqueue, 1, 0, 900, 0, 4, 4);
        let json = ring.export_chrome_trace();
        let doc: serde::Value = serde_json::from_str(&json).expect("chrome trace parses back");
        let serde::Value::Object(fields) = &doc else {
            panic!("top level must be an object")
        };
        let (_, events) = fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .expect("traceEvents present");
        let serde::Value::Array(events) = events else {
            panic!("traceEvents must be an array")
        };
        // 4 events + one thread_name metadata record per active lane.
        assert_eq!(events.len(), 6);
        let field = |ev: &serde::Value, name: &str| -> serde::Value {
            let serde::Value::Object(f) = ev else {
                panic!("event must be object")
            };
            f.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
                .unwrap_or(serde::Value::Null)
        };
        let phases: Vec<serde::Value> = events.iter().map(|e| field(e, "ph")).collect();
        assert_eq!(
            phases
                .iter()
                .filter(|p| **p == serde::Value::String("M".into()))
                .count(),
            2,
            "one thread_name metadata event per active lane"
        );
        assert_eq!(
            phases
                .iter()
                .filter(|p| **p == serde::Value::String("X".into()))
                .count(),
            3
        );
        assert_eq!(
            phases
                .iter()
                .filter(|p| **p == serde::Value::String("i".into()))
                .count(),
            1
        );
        // The stage span carries its op name and decoded args.
        let stage = events
            .iter()
            .find(|e| field(e, "name") == serde::Value::String("stage3 epitome".into()))
            .expect("stage span present");
        assert_eq!(
            field(stage, "cname"),
            serde::Value::String("thread_state_running".into())
        );
        let serde::Value::Object(args) = field(stage, "args") else {
            panic!("args must be object")
        };
        assert!(args.contains(&("images".to_string(), serde::Value::U64(4))));
        assert!(args.contains(&("arena_bytes".to_string(), serde::Value::U64(512))));
        // The registered lane label survives into the metadata event.
        assert!(json.contains("epim-sched-0"));
    }

    #[test]
    fn disabled_path_records_nothing_and_reads_no_clock() {
        // Global-state test: runs phases sequentially inside one #[test]
        // so parallel test threads cannot interleave enable/disable.
        set_enabled(false);
        assert_eq!(start(), 0, "disabled start must not read the clock");
        span(SpanKind::Group, 0, 0, 0, 1, 0);
        instant(SpanKind::Enqueue, 0, 1, 1);
        let before: usize = (0..global().lanes())
            .map(|l| global().events(l).len())
            .sum();
        span(SpanKind::Group, 0, 0, now_ns(), 1, 0);
        let after: usize = (0..global().lanes())
            .map(|l| global().events(l).len())
            .sum();
        assert_eq!(before, after, "disabled spans must not reach the ring");

        set_enabled(true);
        let t = start();
        assert_ne!(t, 0);
        span(SpanKind::Group, 2, 0, t, 5, 0);
        instant(SpanKind::Shed, 2, 3, 9);
        set_enabled(false);
        let ours: Vec<TraceEvent> = global()
            .all_events()
            .into_iter()
            .filter(|e| e.tenant == 2)
            .collect();
        assert!(ours.iter().any(|e| e.kind == SpanKind::Group && e.a == 5));
        assert!(ours
            .iter()
            .any(|e| e.kind == SpanKind::Shed && e.a == 3 && e.b == 9));
    }
}
