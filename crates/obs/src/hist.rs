//! Log-linear (HDR-style) histograms for latency-like u64 samples.
//!
//! Values below 2^[`SUB_BITS`] get one bucket each (exact); every octave
//! above is split into 2^[`SUB_BITS`] linear sub-buckets, so the bucket
//! width is always at most `value / 2^SUB_BITS` — a bounded **relative**
//! quantile error of ~3% across the full u64 range, with a fixed
//! [`BUCKETS`]-slot footprint and O(1) recording.
//!
//! This replaces the runtime's old 64 KiB sorted-sample latency ring:
//! recording never allocates, quantiles are an O(buckets) walk instead of
//! an O(n log n) sort, and two histograms [`Histogram::merge`] **exactly**
//! (element-wise bucket addition) — the fleet rollup loses nothing, where
//! the old ring forgot everything past its wraparound window.

use serde::Serialize;

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` linear
/// buckets, bounding the relative quantile error at `2^-SUB_BITS` (~3%).
pub const SUB_BITS: u32 = 5;

const SUB_COUNT: u64 = 1 << SUB_BITS;

/// Total bucket count covering the full u64 range at [`SUB_BITS`]
/// resolution.
pub const BUCKETS: usize = (SUB_COUNT + (64 - SUB_BITS as u64) * SUB_COUNT) as usize;

/// The bucket index of `v` (log-linear mapping, see module docs).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // v in [2^exp, 2^(exp+1)), exp >= SUB_BITS
    let sub = (v >> (exp - SUB_BITS)) - SUB_COUNT; // 0..SUB_COUNT
    (SUB_COUNT as usize) + ((exp - SUB_BITS) as usize) * SUB_COUNT as usize + sub as usize
}

/// The largest value mapping to bucket `idx` (the bucket's inclusive
/// upper bound) — what quantile queries report.
#[inline]
fn bucket_bound(idx: usize) -> u64 {
    if idx < SUB_COUNT as usize {
        return idx as u64;
    }
    let rel = idx - SUB_COUNT as usize;
    let exp = SUB_BITS + (rel / SUB_COUNT as usize) as u32;
    let sub = (rel % SUB_COUNT as usize) as u64;
    let width = 1u64 << (exp - SUB_BITS);
    let lower = (SUB_COUNT + sub) << (exp - SUB_BITS);
    lower.saturating_add(width - 1)
}

/// A mergeable log-linear histogram of u64 samples (the runtime records
/// nanoseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram (allocates the fixed bucket array once).
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Merges `other` into `self` **exactly**: bucket counts add
    /// element-wise, so any quantile of the merged histogram equals the
    /// quantile over the union of both sample streams (at bucket
    /// resolution). Nothing is sampled, windowed, or dropped.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The nearest-rank `q`-quantile (`q` in `[0, 1]`), reported as the
    /// matching bucket's upper bound clamped to the observed maximum —
    /// within a `2^-SUB_BITS` relative error of the exact order
    /// statistic. Returns 0 when empty. O(buckets), no sort.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(idx).min(self.max);
            }
        }
        self.max
    }

    /// A compact point-in-time copy for reports: only non-empty buckets,
    /// as `(upper_bound, count)` pairs.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(idx, &c)| (bucket_bound(idx), c))
                .collect(),
        }
    }
}

/// A sparse, serializable snapshot of a [`Histogram`]: `(upper_bound,
/// count)` pairs for the non-empty buckets, in ascending bound order.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all recorded samples.
    pub sum: u64,
    /// Largest recorded sample.
    pub max: u64,
    /// `(inclusive upper bound, count)` per non-empty bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Nearest-rank `q`-quantile over the snapshot (same contract as
    /// [`Histogram::quantile`]).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(bound, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return bound.min(self.max);
            }
        }
        self.max
    }

    /// Samples whose bucket upper bound is `<= v` — the cumulative count
    /// Prometheus histogram buckets want.
    pub fn count_le(&self, v: u64) -> u64 {
        self.buckets
            .iter()
            .take_while(|&&(bound, _)| bound <= v)
            .map(|&(_, c)| c)
            .sum()
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_bound_are_consistent() {
        // Every value maps into a bucket whose bound is >= the value and
        // within the promised relative error.
        for shift in 0..63 {
            for off in [0u64, 1, 3] {
                let v = (1u64 << shift) + off;
                let idx = bucket_index(v);
                let bound = bucket_bound(idx);
                assert!(bound >= v, "bound {bound} < value {v}");
                if v >= SUB_COUNT {
                    let err = (bound - v) as f64 / v as f64;
                    assert!(err <= 1.0 / SUB_COUNT as f64 + 1e-12, "err {err} at {v}");
                } else {
                    assert_eq!(bound, v, "small values are exact");
                }
                // Bounds are the largest value in their own bucket.
                assert_eq!(bucket_index(bound), idx);
            }
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 1000);
        }
        for (q, exact) in [(0.5, 5_000_000u64), (0.99, 9_900_000), (1.0, 10_000_000)] {
            let got = h.quantile(q);
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(err <= 1.0 / SUB_COUNT as f64, "q{q}: got {got}, err {err}");
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.max(), 10_000_000);
    }

    #[test]
    fn merge_is_exact() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 0..5000u64 {
            let x = v * v % 77_777;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            whole.record(x);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, whole, "merge must equal recording the union");
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn snapshot_round_trips_quantiles() {
        let mut h = Histogram::new();
        for v in [10u64, 10, 10, 20, 1000, 50_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        for q in [0.1, 0.5, 0.9, 1.0] {
            assert_eq!(snap.quantile(q), h.quantile(q));
        }
        assert_eq!(snap.count_le(10), 3);
        assert_eq!(snap.count_le(999), 4); // 20's bucket bound is 20
        assert_eq!(snap.count_le(u64::MAX), 6);
        assert!((snap.mean() - (10 + 10 + 10 + 20 + 1000 + 50_000) as f64 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.snapshot().quantile(0.99), 0);
        assert_eq!(h.snapshot().count_le(u64::MAX), 0);
    }

    #[test]
    fn equal_samples_report_exactly() {
        // The observed-max clamp makes single-valued streams exact even
        // though the bucket bound overshoots.
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(10_000);
        }
        assert_eq!(h.quantile(0.5), 10_000);
        assert_eq!(h.quantile(0.99), 10_000);
    }
}
