//! Prometheus text-exposition rendering (no network dependency — callers
//! decide how to serve or print the text).

use crate::hist::HistogramSnapshot;

/// Canonical latency bucket upper bounds, in seconds, used when rendering
/// a [`HistogramSnapshot`] as a Prometheus histogram. The snapshot's
/// log-linear buckets are finer than these; rendering folds them into this
/// fixed ladder so dashboards across tenants and processes line up.
pub const LATENCY_BUCKETS_SECONDS: [f64; 19] = [
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
];

enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

struct Metric {
    name: String,
    help: &'static str,
    kind: MetricKind,
    /// Fully rendered sample lines (label set + value), without the name.
    lines: Vec<String>,
}

/// Builds a Prometheus text exposition incrementally. Samples for the
/// same metric name (e.g. one histogram per tenant) group under a single
/// `# HELP`/`# TYPE` header, as the exposition format requires.
#[derive(Default)]
pub struct PromWriter {
    metrics: Vec<Metric>,
}

impl PromWriter {
    /// An empty writer.
    pub fn new() -> Self {
        PromWriter::default()
    }

    fn metric(&mut self, name: &str, help: &'static str, kind: MetricKind) -> &mut Metric {
        if let Some(pos) = self.metrics.iter().position(|m| m.name == name) {
            return &mut self.metrics[pos];
        }
        self.metrics.push(Metric {
            name: name.to_string(),
            help,
            kind,
            lines: Vec::new(),
        });
        self.metrics.last_mut().expect("just pushed")
    }

    /// Adds one counter sample.
    pub fn counter(&mut self, name: &str, help: &'static str, labels: &[(&str, &str)], value: u64) {
        let labels = fmt_labels(labels);
        self.metric(name, help, MetricKind::Counter)
            .lines
            .push(format!("{labels} {value}"));
    }

    /// Adds one counter sample with a fractional value (Prometheus
    /// counters may be floats — e.g. cumulative seconds).
    pub fn counter_f64(
        &mut self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        let labels = fmt_labels(labels);
        self.metric(name, help, MetricKind::Counter)
            .lines
            .push(format!("{labels} {value}"));
    }

    /// Adds one gauge sample.
    pub fn gauge(&mut self, name: &str, help: &'static str, labels: &[(&str, &str)], value: f64) {
        let labels = fmt_labels(labels);
        self.metric(name, help, MetricKind::Gauge)
            .lines
            .push(format!("{labels} {value}"));
    }

    /// Adds one histogram sample set (cumulative `_bucket` lines over
    /// [`LATENCY_BUCKETS_SECONDS`] plus `+Inf`, then `_sum` and
    /// `_count`), converting the snapshot's integer samples to seconds
    /// via `scale` (e.g. `1e-9` for nanosecond samples).
    pub fn histogram(
        &mut self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
        scale: f64,
    ) {
        let metric = self.metric(name, help, MetricKind::Histogram);
        for le in LATENCY_BUCKETS_SECONDS {
            let cutoff = (le / scale) as u64;
            let mut with_le: Vec<(&str, String)> = Vec::with_capacity(labels.len() + 1);
            for &(k, v) in labels {
                with_le.push((k, v.to_string()));
            }
            with_le.push(("le", format!("{le}")));
            let refs: Vec<(&str, &str)> = with_le.iter().map(|(k, v)| (*k, v.as_str())).collect();
            metric
                .lines
                .push(format!("{} {}", fmt_labels(&refs), snap.count_le(cutoff)));
        }
        let mut with_inf: Vec<(&str, &str)> = labels.to_vec();
        with_inf.push(("le", "+Inf"));
        metric
            .lines
            .push(format!("{} {}", fmt_labels(&with_inf), snap.count));
        metric.lines.push(format!(
            "_sum{} {}",
            fmt_labels_suffix(labels),
            snap.sum as f64 * scale
        ));
        metric.lines.push(format!(
            "_count{} {}",
            fmt_labels_suffix(labels),
            snap.count
        ));
    }

    /// Renders the accumulated samples as Prometheus text exposition
    /// (format version 0.0.4).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for metric in &self.metrics {
            out.push_str(&format!("# HELP {} {}\n", metric.name, metric.help));
            out.push_str(&format!(
                "# TYPE {} {}\n",
                metric.name,
                metric.kind.as_str()
            ));
            for line in &metric.lines {
                match &metric.kind {
                    // Histogram lines carry their own suffix markers.
                    MetricKind::Histogram => {
                        if let Some(rest) = line.strip_prefix("_sum") {
                            out.push_str(&format!("{}_sum{rest}\n", metric.name));
                        } else if let Some(rest) = line.strip_prefix("_count") {
                            out.push_str(&format!("{}_count{rest}\n", metric.name));
                        } else {
                            out.push_str(&format!("{}_bucket{line}\n", metric.name));
                        }
                    }
                    _ => out.push_str(&format!("{}{line}\n", metric.name)),
                }
            }
        }
        out
    }
}

/// `{k="v",...}` with exposition-format escaping, or `""` when empty —
/// followed by nothing (callers append ` value`).
fn fmt_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Same as [`fmt_labels`] — a readability alias for `_sum`/`_count`
/// suffix lines.
fn fmt_labels_suffix(labels: &[(&str, &str)]) -> String {
    fmt_labels(labels)
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn counters_group_under_one_header() {
        let mut w = PromWriter::new();
        w.counter(
            "epim_requests_total",
            "Requests admitted.",
            &[("tenant", "a")],
            5,
        );
        w.counter(
            "epim_requests_total",
            "Requests admitted.",
            &[("tenant", "b")],
            7,
        );
        w.gauge("epim_queue_depth", "Requests queued.", &[], 3.0);
        let text = w.render();
        assert_eq!(
            text.matches("# TYPE epim_requests_total counter").count(),
            1
        );
        assert!(text.contains("epim_requests_total{tenant=\"a\"} 5\n"));
        assert!(text.contains("epim_requests_total{tenant=\"b\"} 7\n"));
        assert!(text.contains("epim_queue_depth 3\n"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let mut h = Histogram::new();
        // 3 samples at 20µs, 1 at 2ms (nanosecond units).
        for _ in 0..3 {
            h.record(20_000);
        }
        h.record(2_000_000);
        let mut w = PromWriter::new();
        w.histogram(
            "epim_queue_wait_seconds",
            "Queue wait.",
            &[("tenant", "a")],
            &h.snapshot(),
            1e-9,
        );
        let text = w.render();
        // 20µs lands in le=2.5e-5; 2ms in le=2.5e-3; buckets cumulative.
        assert!(text.contains("epim_queue_wait_seconds_bucket{tenant=\"a\",le=\"0.00001\"} 0\n"));
        assert!(text.contains("epim_queue_wait_seconds_bucket{tenant=\"a\",le=\"0.000025\"} 3\n"));
        assert!(text.contains("epim_queue_wait_seconds_bucket{tenant=\"a\",le=\"0.001\"} 3\n"));
        assert!(text.contains("epim_queue_wait_seconds_bucket{tenant=\"a\",le=\"0.0025\"} 4\n"));
        assert!(text.contains("epim_queue_wait_seconds_bucket{tenant=\"a\",le=\"+Inf\"} 4\n"));
        assert!(text.contains("epim_queue_wait_seconds_count{tenant=\"a\"} 4\n"));
        assert!(text.contains("epim_queue_wait_seconds_sum{tenant=\"a\"} 0.00206"));
        assert_eq!(
            text.matches("# TYPE epim_queue_wait_seconds histogram")
                .count(),
            1
        );
    }

    #[test]
    fn label_values_escape() {
        let mut w = PromWriter::new();
        w.counter("m", "h", &[("tenant", "a\"b\\c\nd")], 1);
        assert!(w.render().contains("m{tenant=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }
}
