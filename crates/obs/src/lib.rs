//! `epim-obs` — observability layer for the EPIM serving stack.
//!
//! Three pieces, usable independently and all free of network
//! dependencies:
//!
//! - [`trace`]: a lock-free, bounded, multi-lane span ring
//!   ([`TraceRing`]) with a process-global instance the runtime's
//!   instrumentation sites record into, plus a chrome://tracing JSON
//!   exporter ([`TraceRing::export_chrome_trace`]). Near-zero cost when
//!   disabled (one relaxed atomic load per site); enable with
//!   [`set_enabled`] or `EPIM_TRACE=1`.
//! - [`hist`]: log-linear HDR-style [`Histogram`]s with exact merge and
//!   O(buckets) quantiles — the storage behind the runtime's per-tenant
//!   queue-wait / service / end-to-end latency distributions.
//! - [`prom`]: a [`PromWriter`] that renders counters, gauges, and
//!   histogram snapshots as Prometheus text exposition.

#![deny(missing_docs)]

pub mod hist;
pub mod prom;
pub mod trace;

pub use hist::{Histogram, HistogramSnapshot, BUCKETS, SUB_BITS};
pub use prom::{PromWriter, LATENCY_BUCKETS_SECONDS};
pub use trace::{
    enabled, global, instant, now_ns, pack_stage_payload, set_enabled, span, start,
    unpack_stage_payload, SpanKind, StageOpKind, TraceEvent, TraceRing, TENANT_NONE,
};
