//! Criterion microbenchmarks for the EPIM kernels: sampling-plan
//! generation, weight reconstruction, the functional data path, the
//! quantizers, the analytic cost model and one evolutionary-search
//! generation.
//!
//! `cargo bench -p epim-bench`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use epim::core::{ConvShape, Epitome, EpitomeDesigner, EpitomeShape, EpitomeSpec, SamplingPlan};
use epim::models::network::Network;
use epim::models::resnet::resnet50;
use epim::pim::datapath::DataPath;
use epim::pim::{AcceleratorConfig, CostModel, Precision};
use epim::quant::{quantize_epitome, QuantGranularity, RangeEstimator};
use epim::search::{EvoSearch, SearchConfig, SearchLayer};
use epim::tensor::ops::{conv2d, gemm, im2col, Conv2dCfg};
use epim::tensor::{init, rng};

fn paper_spec() -> EpitomeSpec {
    EpitomeDesigner::new(128, 128)
        .design(ConvShape::new(512, 256, 3, 3), 1024, 256)
        .expect("legal design")
}

fn random_epitome(spec: EpitomeSpec, seed: u64) -> Epitome {
    let mut r = rng::seeded(seed);
    let data = init::kaiming_normal(&spec.shape().dims(), &mut r);
    Epitome::from_tensor(spec, data).expect("shape matches")
}

fn bench_gemm_sweep(c: &mut Criterion) {
    // Square GEMM sweep over the kernel layer vs the seed's ikj loop.
    for s in [64usize, 128, 256, 512] {
        let mut r = rng::seeded(50 + s as u64);
        let a = init::uniform(&[s, s], -1.0, 1.0, &mut r);
        let b = init::uniform(&[s, s], -1.0, 1.0, &mut r);
        c.bench_function(&format!("gemm_blocked_{s}x{s}x{s}"), |bch| {
            bch.iter(|| a.matmul(&b).expect("square matmul"))
        });
        c.bench_function(&format!("gemm_seed_ikj_{s}x{s}x{s}"), |bch| {
            let mut out = vec![0.0f32; s * s];
            bch.iter(|| {
                gemm::reference_matmul(s, s, s, a.data(), b.data(), &mut out);
                out[0]
            })
        });
    }
    // Transposed variants at one representative size: these used to pay a
    // `transpose()` materialization on every call.
    let s = 256usize;
    let mut r = rng::seeded(99);
    let a = init::uniform(&[s, s], -1.0, 1.0, &mut r);
    let b = init::uniform(&[s, s], -1.0, 1.0, &mut r);
    c.bench_function("gemm_tn_256x256x256", |bch| {
        let mut out = vec![0.0f32; s * s];
        bch.iter(|| {
            gemm::gemm_tn(s, s, s, a.data(), b.data(), &mut out);
            out[0]
        })
    });
    c.bench_function("gemm_nt_256x256x256", |bch| {
        let mut out = vec![0.0f32; s * s];
        bch.iter(|| {
            gemm::gemm_nt(s, s, s, a.data(), b.data(), &mut out);
            out[0]
        })
    });
}

fn bench_conv_sweep(c: &mut Criterion) {
    // (cout, cin, k, hw, stride, padding): early/mid/late ResNet-ish shapes.
    for (cout, cin, k, hw, stride, padding) in [
        (64usize, 32usize, 3usize, 32usize, 1usize, 1usize),
        (128, 64, 3, 16, 1, 1),
        (256, 128, 3, 8, 2, 1),
        (64, 64, 1, 16, 1, 0),
    ] {
        let mut r = rng::seeded(77);
        let x = init::uniform(&[1, cin, hw, hw], -1.0, 1.0, &mut r);
        let w = init::uniform(&[cout, cin, k, k], -1.0, 1.0, &mut r);
        let b = init::uniform(&[cout], -1.0, 1.0, &mut r);
        let cfg = Conv2dCfg { stride, padding };
        c.bench_function(
            &format!("conv2d_fused_{cout}x{cin}x{k}x{k}_on_{hw}"),
            |bch| bch.iter(|| conv2d(&x, &w, Some(&b), cfg).expect("geometry")),
        );
    }
    let mut r = rng::seeded(78);
    let x = init::uniform(&[1, 32, 32, 32], -1.0, 1.0, &mut r);
    c.bench_function("im2col_32ch_3x3_on_32x32", |bch| {
        bch.iter(|| {
            im2col(
                &x,
                3,
                3,
                Conv2dCfg {
                    stride: 1,
                    padding: 1,
                },
            )
            .expect("geometry")
        })
    });
}

fn bench_plan_build(c: &mut Criterion) {
    c.bench_function("sampling_plan_build_512x256x3x3_from_1024x256", |b| {
        let conv = ConvShape::new(512, 256, 3, 3);
        let epi = EpitomeShape::new(256, 256, 2, 2);
        b.iter(|| SamplingPlan::build(conv, epi).expect("legal plan"))
    });
}

fn bench_reconstruct(c: &mut Criterion) {
    c.bench_function("epitome_reconstruct_512x256x3x3", |b| {
        let e = random_epitome(paper_spec(), 1);
        b.iter(|| e.reconstruct().expect("reconstruction succeeds"))
    });
}

fn bench_repetition_map(c: &mut Criterion) {
    c.bench_function("epitome_repetition_map_512x256x3x3", |b| {
        let e = random_epitome(paper_spec(), 2);
        b.iter(|| e.repetition_map())
    });
}

fn bench_datapath_execute(c: &mut Criterion) {
    c.bench_function("datapath_execute_32x16x3x3_on_8x8", |b| {
        let spec = EpitomeSpec::new(ConvShape::new(32, 16, 3, 3), EpitomeShape::new(16, 8, 2, 2))
            .expect("legal spec");
        let e = random_epitome(spec, 3);
        let dp = DataPath::new(
            &e,
            Conv2dCfg {
                stride: 1,
                padding: 1,
            },
            true,
        )
        .expect("data path builds");
        let mut r = rng::seeded(4);
        let x = init::uniform(&[1, 16, 8, 8], -1.0, 1.0, &mut r);
        b.iter(|| dp.execute(&x).expect("execution succeeds"))
    });
}

fn bench_quantize(c: &mut Criterion) {
    let e = random_epitome(paper_spec(), 5);
    c.bench_function("quantize_epitome_3bit_per_tensor", |b| {
        b.iter(|| {
            quantize_epitome(&e, 3, QuantGranularity::PerTensor, &RangeEstimator::MinMax)
                .expect("quantization succeeds")
        })
    });
    c.bench_function("quantize_epitome_3bit_per_crossbar_overlap", |b| {
        b.iter(|| {
            quantize_epitome(
                &e,
                3,
                QuantGranularity::PerCrossbar {
                    rows: 128,
                    cols: 128,
                },
                &RangeEstimator::overlap_default(),
            )
            .expect("quantization succeeds")
        })
    });
}

fn bench_cost_model(c: &mut Criterion) {
    c.bench_function("cost_model_resnet50_w9a9", |b| {
        let model = CostModel::new(AcceleratorConfig::default().with_channel_wrapping(true));
        let net = Network::uniform_epitome(resnet50(), &EpitomeDesigner::new(128, 128), 1024, 256)
            .expect("legal design");
        b.iter(|| net.simulate(&model, Precision::new(9, 9)))
    });
}

fn bench_search_generation(c: &mut Criterion) {
    c.bench_function("evo_search_5_generations_8_layers", |b| {
        let d = EpitomeDesigner::new(128, 128);
        let layers: Vec<SearchLayer> = resnet50()
            .layers
            .iter()
            .filter(|l| l.conv.kh == 3 && l.conv.cin >= 256)
            .take(8)
            .map(|l| SearchLayer {
                conv: l.conv,
                out_pixels: l.out_pixels(),
                candidates: d.candidates(l.conv).expect("candidates"),
            })
            .collect();
        let cfg = SearchConfig {
            population: 16,
            iterations: 5,
            ..SearchConfig::default()
        };
        b.iter_batched(
            || {
                EvoSearch::new(
                    layers.clone(),
                    CostModel::default(),
                    Precision::new(9, 9),
                    cfg,
                )
                .expect("valid problem")
            },
            |s| s.run(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gemm_sweep,
        bench_conv_sweep,
        bench_plan_build,
        bench_reconstruct,
        bench_repetition_map,
        bench_datapath_execute,
        bench_quantize,
        bench_cost_model,
        bench_search_generation
);
criterion_main!(benches);
