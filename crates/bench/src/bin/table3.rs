//! Regenerates Table 3: accuracy and parameter compression of the
//! epitome, epitome + element pruning, and PIM-Prune at 50%/75%.
//!
//! `cargo run -p epim-bench --release --bin table3`

use epim_bench::experiments::table3::table3;
use epim_bench::format::{num, Table};

fn main() {
    println!("Table 3: Epitome vs pruning (accuracy surrogate; compression measured)");
    for (model, rows) in table3() {
        println!("\n{model}:");
        let mut t = Table::new(vec!["Method", "Accuracy(%)", "Compress. Rate"]);
        for r in &rows {
            t.row(vec![
                r.method.clone(),
                num(r.accuracy, 2),
                num(r.compression, 2),
            ]);
        }
        println!("{}", t.render());
    }
}
