//! Prints the FP32 ResNet-50/101 baselines under the *literature* LUT and
//! the scale factors needed to land on the paper's Table 1 anchors
//! (139.8 ms / 214.0 mJ for ResNet-50). `HardwareLut::calibrated` hard-
//! codes the resulting factors; run this after changing the cost model to
//! refresh them.
//!
//! `cargo run -p epim-bench --release --bin calibrate`

use epim::models::network::Network;
use epim::models::resnet::{resnet101, resnet50};
use epim::pim::{AcceleratorConfig, CostModel, HardwareLut, Precision};

fn main() {
    let raw = CostModel::with_lut(AcceleratorConfig::default(), HardwareLut::literature());
    let cal = CostModel::new(AcceleratorConfig::default());

    for (name, backbone) in [("ResNet-50", resnet50()), ("ResNet-101", resnet101())] {
        let base = Network::baseline(backbone);
        let r = base.simulate(&raw, Precision::fp32());
        let c = base.simulate(&cal, Precision::fp32());
        println!("{name} FP32 baseline:");
        println!(
            "  literature LUT: {:>9.1} ms  {:>9.1} mJ  {:>6} XBs  util {:>5.1}%",
            r.latency_ms(),
            r.energy_mj(),
            r.crossbars(),
            r.utilization_pct()
        );
        println!(
            "  calibrated LUT: {:>9.1} ms  {:>9.1} mJ",
            c.latency_ms(),
            c.energy_mj()
        );
        if name == "ResNet-50" {
            println!(
                "  paper anchors:      139.8 ms      214.0 mJ  ->  scale factors: \
                 latency {:.4}, energy {:.4}",
                139.8 / r.latency_ms(),
                214.0 / r.energy_mj()
            );
        } else {
            println!("  paper anchors:      189.7 ms      385.7 mJ");
        }
    }
}
