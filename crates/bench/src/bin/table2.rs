//! Regenerates Table 2: the quantization ablation (naive → per-crossbar
//! scales → overlap-weighted ranges), plus a measured weight-space
//! ablation on real epitomes.
//!
//! `cargo run -p epim-bench --release --bin table2`

use epim_bench::experiments::table2::{table2_accuracy, table2_measured};
use epim_bench::format::{num, Table};

fn main() {
    println!("Table 2: Detailed quantization experiments (accuracy, surrogate)");
    let mut t = Table::new(vec![
        "Model",
        "Naive Quant",
        "+ Adjust w/ Crossbars",
        "+ Adjust w/ Overlap",
    ]);
    for r in table2_accuracy() {
        t.row(vec![
            r.model.clone(),
            num(r.naive, 2),
            num(r.adjust_crossbars, 2),
            num(r.adjust_overlap, 2),
        ]);
    }
    println!("{}", t.render());

    println!("Measured 3-bit weight-space ablation on uniform EPIM-ResNet50 epitomes");
    println!("(no surrogate: real quantizers on real epitome tensors)");
    let mut m = Table::new(vec![
        "Layer",
        "naive MSE",
        "per-XB MSE",
        "rep-weighted MSE (min/max)",
        "rep-weighted MSE (overlap)",
    ]);
    for r in table2_measured(8) {
        m.row(vec![
            r.layer.clone(),
            format!("{:.3e}", r.naive_mse),
            format!("{:.3e}", r.xbar_mse),
            format!("{:.3e}", r.xbar_weighted_mse),
            format!("{:.3e}", r.overlap_weighted_mse),
        ]);
    }
    println!("{}", m.render());
}
