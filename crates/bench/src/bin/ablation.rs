//! Ablation studies over EPIM's design choices: crossbar-aligned shape
//! legalization (§4.1), the overlap-weight hyperparameter `w1` (Eq. 4–5),
//! and data-path robustness to analog non-idealities.
//!
//! `cargo run -p epim-bench --release --bin ablation`

use epim_bench::experiments::ablation::{alignment_ablation, analog_sweep, w1_sweep};
use epim_bench::format::{num, Table};

fn main() {
    println!("Ablation A: crossbar-aligned vs free epitome shapes (W9A9 mapping)");
    let mut t = Table::new(vec![
        "Conv",
        "util aligned (%)",
        "util free (%)",
        "XBs aligned",
        "XBs free",
    ]);
    for r in alignment_ablation() {
        t.row(vec![
            r.conv.clone(),
            num(r.aligned_utilization * 100.0, 1),
            num(r.unaligned_utilization * 100.0, 1),
            r.aligned_xbs.to_string(),
            r.unaligned_xbs.to_string(),
        ]);
    }
    println!("{}", t.render());

    println!("Ablation B: overlap weight w1 (Eq. 4-5), 3-bit per-crossbar quantization");
    let mut t = Table::new(vec!["w1", "rep-weighted MSE", "plain MSE"]);
    for p in w1_sweep(2024) {
        t.row(vec![
            num(p.w1 as f64, 2),
            format!("{:.4e}", p.weighted_mse),
            format!("{:.4e}", p.mse),
        ]);
    }
    println!("{}", t.render());
    println!("reading: w1 trades range coverage for overlap fidelity. On random");
    println!("(untrained) epitomes the regions' extrema coincide and w1 barely");
    println!("matters; the win appears when outliers sit in low-repetition regions");
    println!("(see the measured per-layer block of `table2`, where overlap-weighted");
    println!("ranges reduce repetition-weighted MSE on most layers).\n");

    println!("Ablation C: data-path robustness to analog non-idealities");
    let mut t = Table::new(vec!["noise std", "ADC bits", "output MSE vs ideal"]);
    for p in analog_sweep(2024) {
        t.row(vec![
            num(p.noise_std as f64, 2),
            p.adc_bits
                .map(|b| b.to_string())
                .unwrap_or_else(|| "ideal".into()),
            format!("{:.4e}", p.output_mse),
        ]);
    }
    println!("{}", t.render());
}
