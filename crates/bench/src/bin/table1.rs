//! Regenerates Table 1 of the EPIM paper: main experimental results on
//! ImageNet (accuracy via the calibrated surrogate; #XBs, CR, latency,
//! energy and utilization simulated).
//!
//! `cargo run -p epim-bench --release --bin table1`

use epim_bench::experiments::table1::table1;
use epim_bench::format::{num, Table};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let rows = table1(fast);
    let mut t = Table::new(vec![
        "Model",
        "Bitwidth",
        "Epitome",
        "Accuracy(%)",
        "#XBs",
        "CR of XBs",
        "Latency(ms)",
        "Energy(mJ)",
        "Util(%)",
    ]);
    for r in &rows {
        t.row(vec![
            r.model.clone(),
            r.bitwidth.clone(),
            r.epitome.clone(),
            num(r.accuracy, 2),
            if r.xbs == 0 {
                "-".to_string()
            } else {
                r.xbs.to_string()
            },
            num(r.cr_xbs, 2),
            num(r.latency_ms, 1),
            num(r.energy_mj, 1),
            num(r.utilization_pct, 1),
        ]);
    }
    println!("Table 1: Experimental results of EPIM on ImageNet (simulated)");
    println!("{}", t.render());
    println!("note: accuracy column is the calibrated surrogate (DESIGN.md §2);");
    println!("      hardware columns are measured by the behavior-level simulator.");
}
