//! Kernel performance tracking: seed baselines vs the blocked kernel layer.
//!
//! Each entry times the *seed repository's* implementation of a hot loop
//! (naive ikj matmul, unfused im2col conv with a per-pixel bias lookup, the
//! per-pixel table-walking data path) against the current optimized path on
//! identical inputs, verifies the outputs agree, and records the speedup.
//! Results go to `BENCH_kernels.json` so the perf trajectory is tracked
//! from PR 1 onward; later PRs extend the entry list rather than replacing
//! it.
//!
//! Run: `cargo run --release -p epim-bench --bin bench_kernels`
//! (add `-- --quick` for a faster, noisier pass).

use epim::core::{ConvShape, Epitome, EpitomeDesigner, EpitomeShape, EpitomeSpec};
use epim::models::lower::NetworkWeights;
use epim::models::network::{Network, OperatorChoice};
use epim::models::resnet::{Backbone, LayerInfo};
use epim::pim::datapath::{AnalogModel, DataPath};
use epim::runtime::{Engine, EngineConfig, NetworkEngine, PlanCache};
use epim::tensor::ops::gemm::reference_matmul;
use epim::tensor::ops::{conv2d, conv2d_ref, im2col, Conv2dCfg};
use epim::tensor::{init, rng, Tensor};
use serde::Serialize;
use std::time::Instant;

/// One benchmark comparison.
#[derive(Debug, Serialize)]
struct Entry {
    name: String,
    /// Seed-implementation wall time, milliseconds (best of N).
    baseline_ms: f64,
    /// Optimized-implementation wall time, milliseconds (best of N).
    optimized_ms: f64,
    /// `baseline_ms / optimized_ms`.
    speedup: f64,
    /// Maximum absolute output difference between the two implementations.
    max_abs_diff: f64,
}

/// The emitted report.
#[derive(Debug, Serialize)]
struct Report {
    schema_version: u32,
    generated_by: String,
    num_threads: usize,
    entries: Vec<Entry>,
}

/// Times `f` (best of `reps` after one warmup call) in milliseconds.
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut out = f(); // warmup; also the value used for verification
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (best, out)
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() as f64)
        .fold(0.0, f64::max)
}

fn bench_gemm(entries: &mut Vec<Entry>, reps: usize, sizes: &[usize]) {
    for &s in sizes {
        let mut r = rng::seeded(100 + s as u64);
        let a = init::uniform(&[s, s], -1.0, 1.0, &mut r);
        let b = init::uniform(&[s, s], -1.0, 1.0, &mut r);
        let mut c_base = vec![0.0f32; s * s];
        let (baseline_ms, _) =
            time_best(reps, || reference_matmul(s, s, s, a.data(), b.data(), &mut c_base));
        let (optimized_ms, c_opt) = time_best(reps, || a.matmul(&b).expect("square matmul"));
        entries.push(Entry {
            name: format!("gemm_{s}x{s}x{s}"),
            baseline_ms,
            optimized_ms,
            speedup: baseline_ms / optimized_ms,
            max_abs_diff: max_abs_diff(&c_base, c_opt.data()),
        });
    }
}

/// The seed's conv2d: im2col, naive ikj matmul against an explicitly
/// materialized transposed weight, then a second rearrange pass with the
/// bias resolved per output pixel.
fn seed_conv2d(x: &Tensor, weight: &Tensor, bias: Option<&Tensor>, cfg: Conv2dCfg) -> Tensor {
    let (n, c_in) = (x.shape()[0], x.shape()[1]);
    let (c_out, kh, kw) = (weight.shape()[0], weight.shape()[2], weight.shape()[3]);
    let (h, w) = (x.shape()[2], x.shape()[3]);
    let (oh, ow) = epim::tensor::ops::conv2d_out_dims(h, w, kh, kw, cfg).expect("geometry");
    let cols = im2col(x, kh, kw, cfg).expect("geometry");
    let wmat = weight.reshape(&[c_out, c_in * kh * kw]).expect("reshape");
    let wt = wmat.transpose().expect("transpose");
    let rows = n * oh * ow;
    let ckk = c_in * kh * kw;
    let mut out_mat = vec![0.0f32; rows * c_out];
    reference_matmul(rows, c_out, ckk, cols.data(), wt.data(), &mut out_mat);
    let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
    let od = out.data_mut();
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (ni * oh + oy) * ow + ox;
                for co in 0..c_out {
                    let b = bias.map(|bb| bb.data()[co]).unwrap_or(0.0);
                    od[((ni * c_out + co) * oh + oy) * ow + ox] = out_mat[row * c_out + co] + b;
                }
            }
        }
    }
    out
}

fn bench_conv(entries: &mut Vec<Entry>, reps: usize) {
    // A mid-network ResNet-ish layer on a CIFAR-sized feature map.
    let mut r = rng::seeded(7);
    let x = init::uniform(&[1, 32, 32, 32], -1.0, 1.0, &mut r);
    let wt = init::uniform(&[64, 32, 3, 3], -1.0, 1.0, &mut r);
    let b = init::uniform(&[64], -1.0, 1.0, &mut r);
    let cfg = Conv2dCfg { stride: 1, padding: 1 };

    let (baseline_ms, y_base) = time_best(reps, || seed_conv2d(&x, &wt, Some(&b), cfg));
    let (optimized_ms, y_opt) =
        time_best(reps, || conv2d(&x, &wt, Some(&b), cfg).expect("geometry"));
    entries.push(Entry {
        name: "conv2d_64x32x3x3_on_32x32".to_string(),
        baseline_ms,
        optimized_ms,
        speedup: baseline_ms / optimized_ms,
        max_abs_diff: max_abs_diff(y_base.data(), y_opt.data()),
    });

    // The unfused-but-current-matmul path, to isolate the fusion win.
    let (ref_ms, y_ref) = time_best(reps, || conv2d_ref(&x, &wt, Some(&b), cfg).expect("geometry"));
    entries.push(Entry {
        name: "conv2d_fused_vs_unfused_64x32x3x3".to_string(),
        baseline_ms: ref_ms,
        optimized_ms,
        speedup: ref_ms / optimized_ms,
        max_abs_diff: max_abs_diff(y_ref.data(), y_opt.data()),
    });
}

fn bench_datapath(entries: &mut Vec<Entry>, reps: usize) {
    // Same geometry as the criterion microbench `datapath_execute`.
    let spec = EpitomeSpec::new(ConvShape::new(32, 16, 3, 3), EpitomeShape::new(16, 8, 2, 2))
        .expect("legal spec");
    let mut r = rng::seeded(3);
    let data = init::kaiming_normal(&spec.shape().dims(), &mut r);
    let epi = Epitome::from_tensor(spec, data).expect("shape matches");
    let dp = DataPath::new(&epi, Conv2dCfg { stride: 1, padding: 1 }, true)
        .expect("data path builds");
    let x = init::uniform(&[1, 16, 8, 8], -1.0, 1.0, &mut r);

    let (baseline_ms, y_base) =
        time_best(reps, || dp.execute_reference(&x).expect("execution succeeds").0);
    let (optimized_ms, y_opt) = time_best(reps, || dp.execute(&x).expect("execution succeeds").0);
    entries.push(Entry {
        name: "datapath_execute_32x16x3x3_on_8x8".to_string(),
        baseline_ms,
        optimized_ms,
        speedup: baseline_ms / optimized_ms,
        max_abs_diff: max_abs_diff(y_base.data(), y_opt.data()),
    });
}

fn bench_reconstruct(entries: &mut Vec<Entry>, reps: usize) {
    // The paper's uniform epitome for a 512x256x3x3 conv; baseline is the
    // seed's element-at-a-time reconstruction replayed over the same plan.
    let spec = EpitomeSpec::new(ConvShape::new(512, 256, 3, 3), EpitomeShape::new(256, 256, 2, 2))
        .expect("legal spec");
    let mut r = rng::seeded(9);
    let data = init::kaiming_normal(&spec.shape().dims(), &mut r);
    let epi = Epitome::from_tensor(spec, data).expect("shape matches");

    let seed_reconstruct = || {
        let spec = epi.spec();
        let mut out = Tensor::zeros(&spec.conv().dims());
        for patch in spec.plan().patches() {
            for a in 0..patch.size[0] {
                for bb in 0..patch.size[1] {
                    for c in 0..patch.size[2] {
                        for d in 0..patch.size[3] {
                            let src = [
                                patch.src[0] + a,
                                patch.src[1] + bb,
                                patch.src[2] + c,
                                patch.src[3] + d,
                            ];
                            let dst = [
                                patch.dst[0] + a,
                                patch.dst[1] + bb,
                                patch.dst[2] + c,
                                patch.dst[3] + d,
                            ];
                            let v = epi.tensor().at(&src);
                            out.set(&dst, v).expect("dst within conv shape");
                        }
                    }
                }
            }
        }
        out
    };
    let (baseline_ms, y_base) = time_best(reps, seed_reconstruct);
    let (optimized_ms, y_opt) = time_best(reps, || epi.reconstruct().expect("reconstructs"));
    entries.push(Entry {
        name: "epitome_reconstruct_512x256x3x3".to_string(),
        baseline_ms,
        optimized_ms,
        speedup: baseline_ms / optimized_ms,
        max_abs_diff: max_abs_diff(y_base.data(), y_opt.data()),
    });
}

/// The serving-runtime layer: batched data-path execution and the engine's
/// micro-batcher vs per-request execution on the same inputs. Outputs must
/// be bit-identical (batching is a pure restructuring), so `max_abs_diff`
/// doubles as a correctness gate here.
fn bench_runtime(entries: &mut Vec<Entry>, reps: usize) {
    let spec = EpitomeSpec::new(ConvShape::new(32, 16, 3, 3), EpitomeShape::new(16, 8, 2, 2))
        .expect("legal spec");
    let mut r = rng::seeded(3);
    let data = init::kaiming_normal(&spec.shape().dims(), &mut r);
    let epi = Epitome::from_tensor(spec, data).expect("shape matches");
    let cfg = Conv2dCfg { stride: 1, padding: 1 };
    let xs: Vec<Tensor> =
        (0..8).map(|_| init::uniform(&[1, 16, 16, 16], -1.0, 1.0, &mut r)).collect();
    let refs: Vec<&Tensor> = xs.iter().collect();
    let a9adc8 = AnalogModel { adc_bits: Some(8), dac_bits: Some(9), ..AnalogModel::ideal() };

    // execute_batch vs 8 per-request execute calls, ideal and quantized.
    for (analog, label) in [(AnalogModel::ideal(), "ideal"), (a9adc8, "a9adc8")] {
        let dp = DataPath::with_analog(&epi, cfg, true, analog).expect("data path builds");
        let (baseline_ms, seq) = time_best(reps, || {
            refs.iter().map(|x| dp.execute(x).expect("executes").0).collect::<Vec<_>>()
        });
        let (optimized_ms, batched) =
            time_best(reps, || dp.execute_batch(&refs).expect("executes").0);
        let diff = seq
            .iter()
            .zip(&batched)
            .map(|(a, b)| max_abs_diff(a.data(), b.data()))
            .fold(0.0, f64::max);
        entries.push(Entry {
            name: format!("runtime_batch_datapath_{label}_batch8"),
            baseline_ms,
            optimized_ms,
            speedup: baseline_ms / optimized_ms,
            max_abs_diff: diff,
        });
    }

    // The whole serving engine (queue + batcher thread + plan cache) vs a
    // bare sequential loop over the same data path.
    let cache = PlanCache::new();
    let engine = Engine::with_cache(
        &cache,
        &epi,
        cfg,
        true,
        a9adc8,
        EngineConfig { max_batch: 8, batch_window: std::time::Duration::ZERO, ..EngineConfig::default() },
    )
    .expect("engine builds");
    let (baseline_ms, seq) = time_best(reps, || {
        refs.iter().map(|x| engine.datapath().execute(x).expect("executes").0).collect::<Vec<_>>()
    });
    let (optimized_ms, served) = time_best(reps, || {
        engine
            .infer_many(xs.clone())
            .expect("engine accepts the burst")
            .into_iter()
            .map(|res| res.expect("inference succeeds").output)
            .collect::<Vec<_>>()
    });
    let diff = seq
        .iter()
        .zip(&served)
        .map(|(a, b)| max_abs_diff(a.data(), b.data()))
        .fold(0.0, f64::max);
    entries.push(Entry {
        name: "runtime_engine_serve_burst8".to_string(),
        baseline_ms,
        optimized_ms,
        speedup: baseline_ms / optimized_ms,
        max_abs_diff: diff,
    });
}

/// Multi-image GEMM batching in conv2d: N per-image `conv2d` calls (the
/// pre-batching dispatch pattern) vs one call on the stacked batch. The
/// batched call folds the N GEMM dispatches into one worker-pool dispatch
/// while keeping every image's arithmetic untouched, so `max_abs_diff`
/// doubles as a correctness gate (must be exactly 0).
fn bench_conv_batched(entries: &mut Vec<Entry>, reps: usize) {
    for &(n, c_in, c_out, hw) in &[(16usize, 8usize, 16usize, 8usize), (8, 16, 32, 14)] {
        let mut r = rng::seeded(400 + n as u64);
        let x = init::uniform(&[n, c_in, hw, hw], -1.0, 1.0, &mut r);
        let wt = init::uniform(&[c_out, c_in, 3, 3], -1.0, 1.0, &mut r);
        let b = init::uniform(&[c_out], -1.0, 1.0, &mut r);
        let cfg = Conv2dCfg { stride: 1, padding: 1 };
        let plane = c_in * hw * hw;
        let images: Vec<Tensor> = (0..n)
            .map(|ni| {
                Tensor::from_vec(
                    x.data()[ni * plane..(ni + 1) * plane].to_vec(),
                    &[1, c_in, hw, hw],
                )
                .expect("image slice")
            })
            .collect();

        let (baseline_ms, per_image) = time_best(reps, || {
            images
                .iter()
                .map(|xi| conv2d(xi, &wt, Some(&b), cfg).expect("geometry"))
                .collect::<Vec<_>>()
        });
        let (optimized_ms, stacked) =
            time_best(reps, || conv2d(&x, &wt, Some(&b), cfg).expect("geometry"));
        let oplane = stacked.len() / n;
        let diff = per_image
            .iter()
            .enumerate()
            .map(|(ni, yi)| {
                max_abs_diff(yi.data(), &stacked.data()[ni * oplane..(ni + 1) * oplane])
            })
            .fold(0.0, f64::max);
        entries.push(Entry {
            name: format!("conv2d_batched_gemm_{c_out}x{c_in}x3x3_on_{hw}x{hw}_n{n}"),
            baseline_ms,
            optimized_ms,
            speedup: baseline_ms / optimized_ms,
            max_abs_diff: diff,
        });
    }
}

/// Whole-network pipelined serving: a burst of 8 requests through the
/// `NetworkEngine` (lower -> plan -> serve) vs sequential per-stage
/// reference execution of the same requests. Outputs must be bit-identical
/// (`max_abs_diff` exactly 0 is the correctness gate).
fn bench_network(entries: &mut Vec<Entry>, reps: usize) {
    let layer = |name: &str, conv: ConvShape, res: usize| LayerInfo {
        name: name.to_string(),
        conv,
        out_h: res,
        out_w: res,
    };
    let bb = Backbone {
        name: "bench-resnet".to_string(),
        layers: vec![
            layer("stem.conv1", ConvShape::new(8, 3, 3, 3), 8),
            layer("stage1.block0.conv1", ConvShape::new(8, 8, 1, 1), 4),
            layer("stage1.block0.conv2", ConvShape::new(8, 8, 3, 3), 4),
            layer("stage1.block0.conv3", ConvShape::new(32, 8, 1, 1), 4),
            layer("stage1.block0.downsample", ConvShape::new(32, 8, 1, 1), 4),
            layer("stage1.block1.conv1", ConvShape::new(8, 32, 1, 1), 4),
            layer("stage1.block1.conv2", ConvShape::new(8, 8, 3, 3), 4),
            layer("stage1.block1.conv3", ConvShape::new(32, 8, 1, 1), 4),
            layer("fc", ConvShape::new(10, 32, 1, 1), 1),
        ],
    };
    let spec = EpitomeDesigner::new(16, 16)
        .design(bb.layers[2].conv, 36, 4)
        .expect("legal spec");
    let mut net = Network::baseline(bb);
    net.set_choice(2, OperatorChoice::Epitome(spec.clone())).expect("choice fits");
    net.set_choice(6, OperatorChoice::Epitome(spec)).expect("choice fits");
    let weights = NetworkWeights::random(&net, 7).expect("weights build");
    let analog = AnalogModel { adc_bits: Some(8), dac_bits: Some(9), ..AnalogModel::ideal() };
    let program = net.lower(16, 16).expect("lowers");

    let mut r = rng::seeded(401);
    let xs: Vec<Tensor> =
        (0..8).map(|_| init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r)).collect();

    let (baseline_ms, seq) = time_best(reps, || {
        xs.iter()
            .map(|x| {
                program
                    .forward_reference(&weights, true, analog, x)
                    .expect("reference executes")
                    .0
            })
            .collect::<Vec<_>>()
    });

    let cache = PlanCache::new();
    cache.warm_network(&net).expect("cache warms");
    let engine = NetworkEngine::new(
        &cache,
        &net,
        &weights,
        (16, 16),
        true,
        analog,
        EngineConfig { max_batch: 8, batch_window: std::time::Duration::ZERO, ..EngineConfig::default() },
    )
    .expect("engine builds");
    let (optimized_ms, served) = time_best(reps, || {
        engine
            .infer_many(xs.clone())
            .expect("engine accepts the burst")
            .into_iter()
            .map(|res| res.expect("inference succeeds").output)
            .collect::<Vec<_>>()
    });
    let diff = seq
        .iter()
        .zip(&served)
        .map(|(a, b)| max_abs_diff(a.data(), b.data()))
        .fold(0.0, f64::max);
    entries.push(Entry {
        name: "network_pipeline_resnet_burst8".to_string(),
        baseline_ms,
        optimized_ms,
        speedup: baseline_ms / optimized_ms,
        max_abs_diff: diff,
    });
}

/// Fork-join dispatch: the seed's per-call scoped-thread spawn vs the
/// persistent parked-worker pool, on a copy-bound kernel small enough that
/// dispatch overhead matters. On a 1-core machine both run serially
/// (parity is the expected result there).
fn bench_pool(entries: &mut Vec<Entry>, reps: usize) {
    const N: usize = 1 << 16;
    const CHUNK: usize = 1024;
    let mut data = vec![0.0f32; N];
    let work = |i: usize, c: &mut [f32]| {
        for (j, v) in c.iter_mut().enumerate() {
            *v = ((i * CHUNK + j) as f32).sqrt();
        }
    };
    let threads = epim::tensor::ops::gemm::num_threads_in_use();
    let (baseline_ms, _) = time_best(reps, || {
        if threads <= 1 {
            for (i, c) in data.chunks_mut(CHUNK).enumerate() {
                work(i, c);
            }
        } else {
            // The seed's dispatch: spawn scoped threads on every call.
            let queue = std::sync::Mutex::new(data.chunks_mut(CHUNK).enumerate());
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| loop {
                        let next = queue.lock().expect("queue lock").next();
                        match next {
                            Some((i, c)) => work(i, c),
                            None => break,
                        }
                    });
                }
            });
        }
    });
    let (optimized_ms, _) =
        time_best(reps, || epim_parallel::for_each_chunk_mut(&mut data, CHUNK, work));
    entries.push(Entry {
        name: "pool_fork_join_vs_scoped_spawn".to_string(),
        baseline_ms,
        optimized_ms,
        speedup: baseline_ms / optimized_ms,
        max_abs_diff: 0.0,
    });
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 3 } else { 7 };

    let mut entries = Vec::new();
    bench_gemm(&mut entries, reps, &[128, 256, 512]);
    bench_conv(&mut entries, reps);
    bench_datapath(&mut entries, reps);
    bench_reconstruct(&mut entries, reps);
    bench_runtime(&mut entries, reps);
    bench_pool(&mut entries, reps);
    bench_conv_batched(&mut entries, reps);
    bench_network(&mut entries, reps);

    let report = Report {
        schema_version: 1,
        generated_by: "epim-bench bench_kernels".to_string(),
        num_threads: epim::tensor::ops::gemm::num_threads_in_use(),
        entries,
    };

    println!(
        "{:<44} {:>12} {:>12} {:>9} {:>12}",
        "kernel", "seed (ms)", "now (ms)", "speedup", "max|diff|"
    );
    for e in &report.entries {
        println!(
            "{:<44} {:>12.3} {:>12.3} {:>8.2}x {:>12.2e}",
            e.name, e.baseline_ms, e.optimized_ms, e.speedup, e.max_abs_diff
        );
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_kernels.json", json + "\n").expect("BENCH_kernels.json writable");
    println!("\nwrote BENCH_kernels.json");
}
