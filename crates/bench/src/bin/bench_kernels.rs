//! Kernel performance tracking: seed baselines vs the blocked kernel layer.
//!
//! Each entry times the *seed repository's* implementation of a hot loop
//! (naive ikj matmul, unfused im2col conv with a per-pixel bias lookup, the
//! per-pixel table-walking data path) against the current optimized path on
//! identical inputs, verifies the outputs agree, and records the speedup.
//! Results go to `BENCH_kernels.json` so the perf trajectory is tracked
//! from PR 1 onward; later PRs extend the entry list rather than replacing
//! it.
//!
//! Run: `cargo run --release -p epim-bench --bin bench_kernels`
//! (add `-- --quick` for a faster, noisier pass). Regeneration runs the
//! sweep three times and commits each entry's median-by-speedup
//! observation (with the worst observed `max_abs_diff`), so the
//! committed baseline is a stable estimate rather than one lucky roll —
//! that is what keeps the CI gate below deterministic.
//!
//! ## Regression gate (`--check <baseline.json>`)
//!
//! `-- --check BENCH_kernels.json` re-runs the sweep at `--quick` reps,
//! writes the fresh report to `BENCH_kernels.check.json` (leaving the
//! committed baseline untouched) and compares against the baseline:
//!
//! - **Perf**: each entry's *speedup* (optimized vs the seed
//!   implementation, both timed in the same run on the same machine —
//!   robust to the CI runner being slower or faster than the machine that
//!   committed the baseline) must be at least `1 / 1.25` of the
//!   baseline's speedup, i.e. a >25% relative slowdown fails the gate.
//! - **Correctness**: any entry whose committed `max_abs_diff` is exactly
//!   `0` is a bit-identity gate (batching/serving restructurings); a
//!   nonzero fresh value fails immediately.
//! - **Coverage**: every committed entry must still be produced (the
//!   entry list is append-only history).
//!
//! The process exits nonzero on any failure, which is what lets CI gate
//! merges on the perf trajectory instead of treating
//! `BENCH_kernels.json` as write-only history.

use epim::core::{ConvShape, Epitome, EpitomeShape, EpitomeSpec};
use epim::models::lower::NetworkWeights;
use epim::models::zoo;
use epim::pim::datapath::{AnalogModel, DataPath};
use epim::runtime::{Engine, EngineConfig, NetworkEngine, PlanCache};
use epim::tensor::ops::gemm::reference_matmul;
use epim::tensor::ops::{
    add_relu_slice, add_slice, conv2d, conv2d_into, conv2d_out_dims, conv2d_ref, global_avg_pool,
    im2col, max_pool2d, relu, relu_slice, softmax_rows, softmax_rows_scalar, Conv2dCfg, PoolCfg,
};
use epim::tensor::{init, rng, Tensor};
use serde::Serialize;
use std::time::Instant;

/// One benchmark comparison.
#[derive(Debug, Serialize, serde::Deserialize)]
struct Entry {
    name: String,
    /// Seed-implementation wall time, milliseconds (best of N).
    baseline_ms: f64,
    /// Optimized-implementation wall time, milliseconds (best of N).
    optimized_ms: f64,
    /// `baseline_ms / optimized_ms`.
    speedup: f64,
    /// Maximum absolute output difference between the two implementations.
    max_abs_diff: f64,
}

/// The emitted report.
#[derive(Debug, Serialize, serde::Deserialize)]
struct Report {
    schema_version: u32,
    generated_by: String,
    num_threads: usize,
    entries: Vec<Entry>,
}

/// Times `f` (best of `reps` after one warmup call) in milliseconds.
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut out = f(); // warmup; also the value used for verification
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (best, out)
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() as f64)
        .fold(0.0, f64::max)
}

fn bench_gemm(entries: &mut Vec<Entry>, reps: usize, sizes: &[usize]) {
    for &s in sizes {
        let mut r = rng::seeded(100 + s as u64);
        let a = init::uniform(&[s, s], -1.0, 1.0, &mut r);
        let b = init::uniform(&[s, s], -1.0, 1.0, &mut r);
        let mut c_base = vec![0.0f32; s * s];
        let (baseline_ms, _) = time_best(reps, || {
            reference_matmul(s, s, s, a.data(), b.data(), &mut c_base)
        });
        let (optimized_ms, c_opt) = time_best(reps, || a.matmul(&b).expect("square matmul"));
        entries.push(Entry {
            name: format!("gemm_{s}x{s}x{s}"),
            baseline_ms,
            optimized_ms,
            speedup: baseline_ms / optimized_ms,
            max_abs_diff: max_abs_diff(&c_base, c_opt.data()),
        });
    }
}

/// The seed's conv2d: im2col, naive ikj matmul against an explicitly
/// materialized transposed weight, then a second rearrange pass with the
/// bias resolved per output pixel.
fn seed_conv2d(x: &Tensor, weight: &Tensor, bias: Option<&Tensor>, cfg: Conv2dCfg) -> Tensor {
    let (n, c_in) = (x.shape()[0], x.shape()[1]);
    let (c_out, kh, kw) = (weight.shape()[0], weight.shape()[2], weight.shape()[3]);
    let (h, w) = (x.shape()[2], x.shape()[3]);
    let (oh, ow) = epim::tensor::ops::conv2d_out_dims(h, w, kh, kw, cfg).expect("geometry");
    let cols = im2col(x, kh, kw, cfg).expect("geometry");
    let wmat = weight.reshape(&[c_out, c_in * kh * kw]).expect("reshape");
    let wt = wmat.transpose().expect("transpose");
    let rows = n * oh * ow;
    let ckk = c_in * kh * kw;
    let mut out_mat = vec![0.0f32; rows * c_out];
    reference_matmul(rows, c_out, ckk, cols.data(), wt.data(), &mut out_mat);
    let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
    let od = out.data_mut();
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (ni * oh + oy) * ow + ox;
                for co in 0..c_out {
                    let b = bias.map(|bb| bb.data()[co]).unwrap_or(0.0);
                    od[((ni * c_out + co) * oh + oy) * ow + ox] = out_mat[row * c_out + co] + b;
                }
            }
        }
    }
    out
}

fn bench_conv(entries: &mut Vec<Entry>, reps: usize) {
    // A mid-network ResNet-ish layer on a CIFAR-sized feature map.
    let mut r = rng::seeded(7);
    let x = init::uniform(&[1, 32, 32, 32], -1.0, 1.0, &mut r);
    let wt = init::uniform(&[64, 32, 3, 3], -1.0, 1.0, &mut r);
    let b = init::uniform(&[64], -1.0, 1.0, &mut r);
    let cfg = Conv2dCfg {
        stride: 1,
        padding: 1,
    };

    let (baseline_ms, y_base) = time_best(reps, || seed_conv2d(&x, &wt, Some(&b), cfg));
    let (optimized_ms, y_opt) =
        time_best(reps, || conv2d(&x, &wt, Some(&b), cfg).expect("geometry"));
    entries.push(Entry {
        name: "conv2d_64x32x3x3_on_32x32".to_string(),
        baseline_ms,
        optimized_ms,
        speedup: baseline_ms / optimized_ms,
        max_abs_diff: max_abs_diff(y_base.data(), y_opt.data()),
    });

    // The unfused-but-current-matmul path, to isolate the fusion win.
    let (ref_ms, y_ref) = time_best(reps, || {
        conv2d_ref(&x, &wt, Some(&b), cfg).expect("geometry")
    });
    entries.push(Entry {
        name: "conv2d_fused_vs_unfused_64x32x3x3".to_string(),
        baseline_ms: ref_ms,
        optimized_ms,
        speedup: ref_ms / optimized_ms,
        max_abs_diff: max_abs_diff(y_ref.data(), y_opt.data()),
    });
}

fn bench_datapath(entries: &mut Vec<Entry>, reps: usize) {
    // Same geometry as the criterion microbench `datapath_execute`.
    let spec = EpitomeSpec::new(ConvShape::new(32, 16, 3, 3), EpitomeShape::new(16, 8, 2, 2))
        .expect("legal spec");
    let mut r = rng::seeded(3);
    let data = init::kaiming_normal(&spec.shape().dims(), &mut r);
    let epi = Epitome::from_tensor(spec, data).expect("shape matches");
    let dp = DataPath::new(
        &epi,
        Conv2dCfg {
            stride: 1,
            padding: 1,
        },
        true,
    )
    .expect("data path builds");
    let x = init::uniform(&[1, 16, 8, 8], -1.0, 1.0, &mut r);

    let (baseline_ms, y_base) = time_best(reps, || {
        dp.execute_reference(&x).expect("execution succeeds").0
    });
    let (optimized_ms, y_opt) = time_best(reps, || dp.execute(&x).expect("execution succeeds").0);
    entries.push(Entry {
        name: "datapath_execute_32x16x3x3_on_8x8".to_string(),
        baseline_ms,
        optimized_ms,
        speedup: baseline_ms / optimized_ms,
        max_abs_diff: max_abs_diff(y_base.data(), y_opt.data()),
    });
}

fn bench_reconstruct(entries: &mut Vec<Entry>, reps: usize) {
    // The paper's uniform epitome for a 512x256x3x3 conv; baseline is the
    // seed's element-at-a-time reconstruction replayed over the same plan.
    let spec = EpitomeSpec::new(
        ConvShape::new(512, 256, 3, 3),
        EpitomeShape::new(256, 256, 2, 2),
    )
    .expect("legal spec");
    let mut r = rng::seeded(9);
    let data = init::kaiming_normal(&spec.shape().dims(), &mut r);
    let epi = Epitome::from_tensor(spec, data).expect("shape matches");

    let seed_reconstruct = || {
        let spec = epi.spec();
        let mut out = Tensor::zeros(&spec.conv().dims());
        for patch in spec.plan().patches() {
            for a in 0..patch.size[0] {
                for bb in 0..patch.size[1] {
                    for c in 0..patch.size[2] {
                        for d in 0..patch.size[3] {
                            let src = [
                                patch.src[0] + a,
                                patch.src[1] + bb,
                                patch.src[2] + c,
                                patch.src[3] + d,
                            ];
                            let dst = [
                                patch.dst[0] + a,
                                patch.dst[1] + bb,
                                patch.dst[2] + c,
                                patch.dst[3] + d,
                            ];
                            let v = epi.tensor().at(&src);
                            out.set(&dst, v).expect("dst within conv shape");
                        }
                    }
                }
            }
        }
        out
    };
    let (baseline_ms, y_base) = time_best(reps, seed_reconstruct);
    let (optimized_ms, y_opt) = time_best(reps, || epi.reconstruct().expect("reconstructs"));
    entries.push(Entry {
        name: "epitome_reconstruct_512x256x3x3".to_string(),
        baseline_ms,
        optimized_ms,
        speedup: baseline_ms / optimized_ms,
        max_abs_diff: max_abs_diff(y_base.data(), y_opt.data()),
    });
}

/// The serving-runtime layer: batched data-path execution and the engine's
/// micro-batcher vs per-request execution on the same inputs. Outputs must
/// be bit-identical (batching is a pure restructuring), so `max_abs_diff`
/// doubles as a correctness gate here.
fn bench_runtime(entries: &mut Vec<Entry>, reps: usize) {
    let spec = EpitomeSpec::new(ConvShape::new(32, 16, 3, 3), EpitomeShape::new(16, 8, 2, 2))
        .expect("legal spec");
    let mut r = rng::seeded(3);
    let data = init::kaiming_normal(&spec.shape().dims(), &mut r);
    let epi = Epitome::from_tensor(spec, data).expect("shape matches");
    let cfg = Conv2dCfg {
        stride: 1,
        padding: 1,
    };
    let xs: Vec<Tensor> = (0..8)
        .map(|_| init::uniform(&[1, 16, 16, 16], -1.0, 1.0, &mut r))
        .collect();
    let refs: Vec<&Tensor> = xs.iter().collect();
    let a9adc8 = AnalogModel {
        adc_bits: Some(8),
        dac_bits: Some(9),
        ..AnalogModel::ideal()
    };

    // execute_batch vs 8 per-request execute calls, ideal and quantized.
    for (analog, label) in [(AnalogModel::ideal(), "ideal"), (a9adc8, "a9adc8")] {
        let dp = DataPath::with_analog(&epi, cfg, true, analog).expect("data path builds");
        let (baseline_ms, seq) = time_best(reps, || {
            refs.iter()
                .map(|x| dp.execute(x).expect("executes").0)
                .collect::<Vec<_>>()
        });
        let (optimized_ms, batched) =
            time_best(reps, || dp.execute_batch(&refs).expect("executes").0);
        let diff = seq
            .iter()
            .zip(&batched)
            .map(|(a, b)| max_abs_diff(a.data(), b.data()))
            .fold(0.0, f64::max);
        entries.push(Entry {
            name: format!("runtime_batch_datapath_{label}_batch8"),
            baseline_ms,
            optimized_ms,
            speedup: baseline_ms / optimized_ms,
            max_abs_diff: diff,
        });
    }

    // The whole serving engine (queue + batcher thread + plan cache) vs a
    // bare sequential loop over the same data path.
    let cache = PlanCache::new();
    let engine = Engine::with_cache(
        &cache,
        &epi,
        cfg,
        true,
        a9adc8,
        EngineConfig {
            max_batch: 8,
            batch_window: std::time::Duration::ZERO,
            ..EngineConfig::default()
        },
    )
    .expect("engine builds");
    let (baseline_ms, seq) = time_best(reps, || {
        refs.iter()
            .map(|x| engine.datapath().execute(x).expect("executes").0)
            .collect::<Vec<_>>()
    });
    let (optimized_ms, served) = time_best(reps, || {
        engine
            .infer_many(xs.clone())
            .expect("engine accepts the burst")
            .into_iter()
            .map(|res| res.expect("inference succeeds").output)
            .collect::<Vec<_>>()
    });
    let diff = seq
        .iter()
        .zip(&served)
        .map(|(a, b)| max_abs_diff(a.data(), b.data()))
        .fold(0.0, f64::max);
    entries.push(Entry {
        name: "runtime_engine_serve_burst8".to_string(),
        baseline_ms,
        optimized_ms,
        speedup: baseline_ms / optimized_ms,
        max_abs_diff: diff,
    });
}

/// Multi-image GEMM batching in conv2d: N per-image `conv2d` calls (the
/// pre-batching dispatch pattern) vs one call on the stacked batch. The
/// batched call folds the N GEMM dispatches into one worker-pool dispatch
/// while keeping every image's arithmetic untouched, so `max_abs_diff`
/// doubles as a correctness gate (must be exactly 0).
fn bench_conv_batched(entries: &mut Vec<Entry>, reps: usize) {
    for &(n, c_in, c_out, hw) in &[(16usize, 8usize, 16usize, 8usize), (8, 16, 32, 14)] {
        let mut r = rng::seeded(400 + n as u64);
        let x = init::uniform(&[n, c_in, hw, hw], -1.0, 1.0, &mut r);
        let wt = init::uniform(&[c_out, c_in, 3, 3], -1.0, 1.0, &mut r);
        let b = init::uniform(&[c_out], -1.0, 1.0, &mut r);
        let cfg = Conv2dCfg {
            stride: 1,
            padding: 1,
        };
        let plane = c_in * hw * hw;
        let images: Vec<Tensor> = (0..n)
            .map(|ni| {
                Tensor::from_vec(
                    x.data()[ni * plane..(ni + 1) * plane].to_vec(),
                    &[1, c_in, hw, hw],
                )
                .expect("image slice")
            })
            .collect();

        let (baseline_ms, per_image) = time_best(reps, || {
            images
                .iter()
                .map(|xi| conv2d(xi, &wt, Some(&b), cfg).expect("geometry"))
                .collect::<Vec<_>>()
        });
        let (optimized_ms, stacked) =
            time_best(reps, || conv2d(&x, &wt, Some(&b), cfg).expect("geometry"));
        let oplane = stacked.len() / n;
        let diff = per_image
            .iter()
            .enumerate()
            .map(|(ni, yi)| {
                max_abs_diff(yi.data(), &stacked.data()[ni * oplane..(ni + 1) * oplane])
            })
            .fold(0.0, f64::max);
        entries.push(Entry {
            name: format!("conv2d_batched_gemm_{c_out}x{c_in}x3x3_on_{hw}x{hw}_n{n}"),
            baseline_ms,
            optimized_ms,
            speedup: baseline_ms / optimized_ms,
            max_abs_diff: diff,
        });
    }
}

/// Whole-network pipelined serving: a burst of 8 requests through the
/// `NetworkEngine` (lower -> plan -> serve) vs sequential per-stage
/// reference execution of the same requests. Outputs must be bit-identical
/// (`max_abs_diff` exactly 0 is the correctness gate).
///
/// Emits three entries from one interleaved measurement so they stay
/// directly comparable under machine load:
/// - `network_pipeline_resnet_burst8`: the engine pinned to
///   `optimize_program: false` — the pipelining win alone;
/// - `network_fused_resnet_burst8`: the default (fused) engine — fused
///   epilogues, folded stages and the liveness-planned arena on top;
/// - `network_arena_peak_mb_burst8`: the arena's peak activation bytes vs
///   the old exact-size pool's high-water mark (deterministic bytes, not
///   timings; the "speedup" is the memory shrink factor).
fn bench_network(entries: &mut Vec<Entry>, reps: usize) {
    // The zoo's tiny ResNet (stem 8, inner width 8, 10 classes) is the
    // exact backbone+spec this entry has always timed.
    let (net, _) = zoo::tiny_epitome_network(8, 8, 10).expect("legal spec");
    let weights = NetworkWeights::random(&net, 7).expect("weights build");
    let analog = AnalogModel {
        adc_bits: Some(8),
        dac_bits: Some(9),
        ..AnalogModel::ideal()
    };
    let program = net.lower(16, 16).expect("lowers");

    let mut r = rng::seeded(401);
    let xs: Vec<Tensor> = (0..8)
        .map(|_| init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r))
        .collect();

    let (baseline_ms, seq) = time_best(reps, || {
        xs.iter()
            .map(|x| {
                program
                    .forward_reference(&weights, true, analog, x)
                    .expect("reference executes")
                    .0
            })
            .collect::<Vec<_>>()
    });

    let build = |optimize_program: bool| {
        let cache = PlanCache::new();
        cache.warm_network(&net).expect("cache warms");
        NetworkEngine::new(
            &cache,
            &net,
            &weights,
            (16, 16),
            true,
            analog,
            EngineConfig {
                max_batch: 8,
                batch_window: std::time::Duration::ZERO,
                optimize_program,
                ..EngineConfig::default()
            },
        )
        .expect("engine builds")
    };
    let raw = build(false);
    let fused = build(true);
    let serve = |engine: &NetworkEngine| {
        engine
            .infer_many(xs.clone())
            .expect("engine accepts the burst")
            .into_iter()
            .map(|res| res.expect("inference succeeds").output)
            .collect::<Vec<_>>()
    };
    // Alternate the two engines within one loop: a load spike hits both
    // the same way instead of skewing whichever happened to run under it.
    // The high repetition count is what separates the ~10% fusion win
    // from worker-wakeup jitter (each serve is only ~0.4 ms).
    let mut raw_out = serve(&raw);
    let mut fused_out = serve(&fused);
    let (mut raw_ms, mut fused_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..25 * reps {
        let t0 = Instant::now();
        raw_out = serve(&raw);
        raw_ms = raw_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        fused_out = serve(&fused);
        fused_ms = fused_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    let diff_vs_seq = |served: &[Tensor]| {
        seq.iter()
            .zip(served)
            .map(|(a, b)| max_abs_diff(a.data(), b.data()))
            .fold(0.0, f64::max)
    };
    entries.push(Entry {
        name: "network_pipeline_resnet_burst8".to_string(),
        baseline_ms,
        optimized_ms: raw_ms,
        speedup: baseline_ms / raw_ms,
        max_abs_diff: diff_vs_seq(&raw_out),
    });
    entries.push(Entry {
        name: "network_fused_resnet_burst8".to_string(),
        baseline_ms,
        optimized_ms: fused_ms,
        speedup: baseline_ms / fused_ms,
        max_abs_diff: diff_vs_seq(&fused_out),
    });

    let stats = fused.stats();
    let to_mb = |bytes: u64| bytes as f64 / (1024.0 * 1024.0);
    entries.push(Entry {
        name: "network_arena_peak_mb_burst8".to_string(),
        baseline_ms: to_mb(stats.legacy_pool_bytes),
        optimized_ms: to_mb(stats.arena_bytes),
        speedup: stats.legacy_pool_bytes as f64 / stats.arena_bytes as f64,
        max_abs_diff: 0.0,
    });
}

/// The graph-fusion layer: fused kernel epilogues and the fused serving
/// engine vs their unfused two-pass forms on identical inputs. Fusion is
/// bit-identity-safe by construction (the ReLU clamp lands on exactly the
/// value the separate pass would have read), so every entry's
/// `max_abs_diff` is a hard `0` gate.
fn bench_fusion(entries: &mut Vec<Entry>, reps: usize) {
    // conv2d + bias then a separate relu pass over the output vs the
    // ReLU-in-epilogue writeback, on identical preallocated buffers (same
    // geometry family as `datapath_execute_32x16x3x3`). The fused form
    // must also match the plain `relu(conv2d(..))` tensor path bit for
    // bit — that diff feeds the identity gate.
    let mut r = rng::seeded(600);
    let (n, c_in, c_out, hw) = (4usize, 16usize, 32usize, 16usize);
    let x = init::uniform(&[n, c_in, hw, hw], -1.0, 1.0, &mut r);
    let wt = init::uniform(&[c_out, c_in, 3, 3], -1.0, 1.0, &mut r);
    let b = init::uniform(&[c_out], -1.0, 1.0, &mut r);
    let cfg = Conv2dCfg {
        stride: 1,
        padding: 1,
    };
    let (oh, ow) = conv2d_out_dims(hw, hw, 3, 3, cfg).expect("geometry");
    let mut cols = vec![0.0f32; n * oh * ow * c_in * 9];
    let mut pre = vec![0.0f32; n * c_out * oh * ow];
    let mut two_pass = vec![0.0f32; n * c_out * oh * ow];
    let mut fused = vec![0.0f32; n * c_out * oh * ow];
    let (baseline_ms, ()) = time_best(5 * reps, || {
        conv2d_into(
            x.data(),
            (n, c_in, hw, hw),
            &wt,
            Some(&b),
            cfg,
            false,
            &mut cols,
            &mut pre,
        )
        .expect("geometry");
        relu_slice(&pre, &mut two_pass);
    });
    let (optimized_ms, ()) = time_best(5 * reps, || {
        conv2d_into(
            x.data(),
            (n, c_in, hw, hw),
            &wt,
            Some(&b),
            cfg,
            true,
            &mut cols,
            &mut fused,
        )
        .expect("geometry")
    });
    let y_tensor = relu(&conv2d(&x, &wt, Some(&b), cfg).expect("geometry"));
    entries.push(Entry {
        name: "fused_conv_bias_relu_32x16".to_string(),
        baseline_ms,
        optimized_ms,
        speedup: baseline_ms / optimized_ms,
        max_abs_diff: max_abs_diff(&two_pass, &fused).max(max_abs_diff(y_tensor.data(), &fused)),
    });

    // Residual add + relu: two traversals vs the single-traversal fused
    // kernel (the shape of every post-shortcut rectification).
    const LEN: usize = 1 << 18;
    let a = init::uniform(&[LEN], -1.0, 1.0, &mut r);
    let bb = init::uniform(&[LEN], -1.0, 1.0, &mut r);
    let mut tmp = vec![0.0f32; LEN];
    let mut two_pass = vec![0.0f32; LEN];
    let mut one_pass = vec![0.0f32; LEN];
    let (baseline_ms, ()) = time_best(reps, || {
        add_slice(a.data(), bb.data(), &mut tmp);
        relu_slice(&tmp, &mut two_pass);
    });
    let (optimized_ms, ()) = time_best(reps, || add_relu_slice(a.data(), bb.data(), &mut one_pass));
    entries.push(Entry {
        name: "fused_add_relu".to_string(),
        baseline_ms,
        optimized_ms,
        speedup: baseline_ms / optimized_ms,
        max_abs_diff: max_abs_diff(&two_pass, &one_pass),
    });
}

/// Observability overhead: the fused serving burst with tracing disabled
/// (one relaxed atomic load per hook) as the baseline vs the same burst
/// with the trace ring recording every span. The "speedup" is the
/// disabled/enabled wall-time ratio — expected within timing noise of
/// 1.0x; it *dropping* means recording got more expensive, which is
/// exactly what the CI gate's one-sided slowdown check catches. Both
/// modes must stay bit-identical to sequential reference execution
/// (`max_abs_diff` exactly 0 is the correctness gate: tracing must never
/// perturb the arithmetic). The absolute perf of the disabled path is
/// separately gated by `network_fused_resnet_burst8`, whose serve now
/// runs through the same (disabled) hooks.
fn bench_tracing(entries: &mut Vec<Entry>, reps: usize) {
    let (net, _) = zoo::tiny_epitome_network(8, 8, 10).expect("legal spec");
    let weights = NetworkWeights::random(&net, 7).expect("weights build");
    let analog = AnalogModel {
        adc_bits: Some(8),
        dac_bits: Some(9),
        ..AnalogModel::ideal()
    };
    let program = net.lower(16, 16).expect("lowers");

    let mut r = rng::seeded(701);
    let xs: Vec<Tensor> = (0..8)
        .map(|_| init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r))
        .collect();
    let seq: Vec<Tensor> = xs
        .iter()
        .map(|x| {
            program
                .forward_reference(&weights, true, analog, x)
                .expect("reference executes")
                .0
        })
        .collect();

    let cache = PlanCache::new();
    cache.warm_network(&net).expect("cache warms");
    let engine = NetworkEngine::new(
        &cache,
        &net,
        &weights,
        (16, 16),
        true,
        analog,
        EngineConfig {
            max_batch: 8,
            batch_window: std::time::Duration::ZERO,
            ..EngineConfig::default()
        },
    )
    .expect("engine builds");
    let serve = || {
        engine
            .infer_many(xs.clone())
            .expect("engine accepts the burst")
            .into_iter()
            .map(|res| res.expect("inference succeeds").output)
            .collect::<Vec<_>>()
    };
    // Alternate enabled/disabled serves in one loop so a load spike hits
    // both modes the same way (same discipline as `bench_network`).
    epim::obs::set_enabled(true);
    let mut traced_out = serve();
    epim::obs::set_enabled(false);
    let mut plain_out = serve();
    let (mut traced_ms, mut plain_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..25 * reps {
        epim::obs::set_enabled(true);
        let t0 = Instant::now();
        traced_out = serve();
        traced_ms = traced_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        epim::obs::set_enabled(false);
        let t0 = Instant::now();
        plain_out = serve();
        plain_ms = plain_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    let diff_vs_seq = |served: &[Tensor]| {
        seq.iter()
            .zip(served)
            .map(|(a, b)| max_abs_diff(a.data(), b.data()))
            .fold(0.0, f64::max)
    };
    entries.push(Entry {
        name: "tracing_overhead_serve_burst8".to_string(),
        baseline_ms: plain_ms,
        optimized_ms: traced_ms,
        speedup: plain_ms / traced_ms,
        max_abs_diff: diff_vs_seq(&traced_out).max(diff_vs_seq(&plain_out)),
    });
}

/// Fault-harness overhead: the fused serving burst with no fault plan
/// installed (one relaxed atomic load per injection point) as the
/// baseline vs the same burst with a plan installed whose rules never
/// fire — the "armed but silent" worst case of the always-on cost, since
/// every hook now takes the slow path through per-point hit accounting.
/// The "speedup" is the disabled/armed wall-time ratio — expected within
/// timing noise of 1.0x. Both modes must stay bit-identical to
/// sequential reference execution (`max_abs_diff` exactly 0 is the
/// correctness gate: an armed harness must never perturb the
/// arithmetic).
fn bench_faults(entries: &mut Vec<Entry>, reps: usize) {
    use epim::faults::{FaultPlan, FaultRule, ALL_POINTS};
    let (net, _) = zoo::tiny_epitome_network(8, 8, 10).expect("legal spec");
    let weights = NetworkWeights::random(&net, 7).expect("weights build");
    let analog = AnalogModel {
        adc_bits: Some(8),
        dac_bits: Some(9),
        ..AnalogModel::ideal()
    };
    let program = net.lower(16, 16).expect("lowers");

    let mut r = rng::seeded(901);
    let xs: Vec<Tensor> = (0..8)
        .map(|_| init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r))
        .collect();
    let seq: Vec<Tensor> = xs
        .iter()
        .map(|x| {
            program
                .forward_reference(&weights, true, analog, x)
                .expect("reference executes")
                .0
        })
        .collect();

    let cache = PlanCache::new();
    cache.warm_network(&net).expect("cache warms");
    let engine = NetworkEngine::new(
        &cache,
        &net,
        &weights,
        (16, 16),
        true,
        analog,
        EngineConfig {
            max_batch: 8,
            batch_window: std::time::Duration::ZERO,
            ..EngineConfig::default()
        },
    )
    .expect("engine builds");
    let serve = || {
        engine
            .infer_many(xs.clone())
            .expect("engine accepts the burst")
            .into_iter()
            .map(|res| res.expect("inference succeeds").output)
            .collect::<Vec<_>>()
    };
    let arm = || {
        let mut plan = FaultPlan::new(42);
        for point in ALL_POINTS {
            plan = plan.with_rule(point, FaultRule::never());
        }
        epim::faults::install(plan);
    };
    // Alternate armed/disabled serves in one loop so a load spike hits
    // both modes the same way (same discipline as `bench_tracing`).
    arm();
    let mut armed_out = serve();
    epim::faults::clear();
    let mut plain_out = serve();
    let (mut armed_ms, mut plain_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..25 * reps {
        arm();
        let t0 = Instant::now();
        armed_out = serve();
        armed_ms = armed_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        epim::faults::clear();
        let t0 = Instant::now();
        plain_out = serve();
        plain_ms = plain_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    let diff_vs_seq = |served: &[Tensor]| {
        seq.iter()
            .zip(served)
            .map(|(a, b)| max_abs_diff(a.data(), b.data()))
            .fold(0.0, f64::max)
    };
    entries.push(Entry {
        name: "faults_overhead_serve_burst8".to_string(),
        baseline_ms: plain_ms,
        optimized_ms: armed_ms,
        speedup: plain_ms / armed_ms,
        max_abs_diff: diff_vs_seq(&armed_out).max(diff_vs_seq(&plain_out)),
    });
}

/// Multi-network tenancy: two epitome networks served as tenants of one
/// `MultiEngine` (shared plan cache and scheduler threads, weighted-fair
/// draining) vs sequential per-stage reference execution of both tenants'
/// bursts. Outputs must be bit-identical per tenant (`max_abs_diff`
/// exactly 0 is the correctness gate).
fn bench_tenancy(entries: &mut Vec<Entry>, reps: usize) {
    use epim::runtime::{MultiEngine, TenantConfig};
    let (net_a, _) = zoo::tiny_epitome_network(8, 8, 10).expect("legal spec");
    let (net_b, _) = zoo::tiny_epitome_network(8, 4, 10).expect("legal spec");
    let weights_a = NetworkWeights::random(&net_a, 7).expect("weights build");
    let weights_b = NetworkWeights::random(&net_b, 8).expect("weights build");
    let analog = AnalogModel {
        adc_bits: Some(8),
        dac_bits: Some(9),
        ..AnalogModel::ideal()
    };
    let prog_a = net_a.lower(16, 16).expect("lowers");
    let prog_b = net_b.lower(16, 16).expect("lowers");

    let mut r = rng::seeded(501);
    let xs_a: Vec<Tensor> = (0..8)
        .map(|_| init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r))
        .collect();
    let xs_b: Vec<Tensor> = (0..8)
        .map(|_| init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r))
        .collect();

    let (baseline_ms, seq) = time_best(reps, || {
        let run = |prog: &epim::models::lower::NetworkProgram,
                   weights: &NetworkWeights,
                   xs: &[Tensor]| {
            xs.iter()
                .map(|x| {
                    prog.forward_reference(weights, true, analog, x)
                        .expect("reference executes")
                        .0
                })
                .collect::<Vec<_>>()
        };
        (
            run(&prog_a, &weights_a, &xs_a),
            run(&prog_b, &weights_b, &xs_b),
        )
    });

    let cache = PlanCache::new();
    let tenant_cfg = TenantConfig {
        max_batch: 8,
        batch_window: std::time::Duration::ZERO,
        ..TenantConfig::default()
    };
    let mut builder = MultiEngine::builder(&cache).workers(2);
    let id_a = builder
        .register("a", &net_a, &weights_a, (16, 16), true, analog, tenant_cfg)
        .expect("tenant registers");
    let id_b = builder
        .register("b", &net_b, &weights_b, (16, 16), true, analog, tenant_cfg)
        .expect("tenant registers");
    let engine = builder.build().expect("engine builds");
    let (optimized_ms, served) = time_best(reps, || {
        std::thread::scope(|scope| {
            let ha = scope.spawn(|| {
                engine
                    .infer_many(id_a, xs_a.clone())
                    .expect("burst accepted")
                    .into_iter()
                    .map(|res| res.expect("inference succeeds").output)
                    .collect::<Vec<_>>()
            });
            let hb = scope.spawn(|| {
                engine
                    .infer_many(id_b, xs_b.clone())
                    .expect("burst accepted")
                    .into_iter()
                    .map(|res| res.expect("inference succeeds").output)
                    .collect::<Vec<_>>()
            });
            (
                ha.join().expect("tenant a client"),
                hb.join().expect("tenant b client"),
            )
        })
    });
    let diff_of = |want: &[Tensor], got: &[Tensor]| {
        want.iter()
            .zip(got)
            .map(|(a, b)| max_abs_diff(a.data(), b.data()))
            .fold(0.0, f64::max)
    };
    let diff = diff_of(&seq.0, &served.0).max(diff_of(&seq.1, &served.1));
    entries.push(Entry {
        name: "multi_tenant_two_networks_burst8".to_string(),
        baseline_ms,
        optimized_ms,
        speedup: baseline_ms / optimized_ms,
        max_abs_diff: diff,
    });
}

/// Fork-join dispatch: the seed's per-call scoped-thread spawn vs the
/// persistent parked-worker pool, on a copy-bound kernel small enough that
/// dispatch overhead matters. On a 1-core machine both run serially
/// (parity is the expected result there).
fn bench_pool(entries: &mut Vec<Entry>, reps: usize) {
    const N: usize = 1 << 16;
    const CHUNK: usize = 1024;
    let mut data = vec![0.0f32; N];
    let work = |i: usize, c: &mut [f32]| {
        for (j, v) in c.iter_mut().enumerate() {
            *v = ((i * CHUNK + j) as f32).sqrt();
        }
    };
    let threads = epim::tensor::ops::gemm::num_threads_in_use();
    let (baseline_ms, _) = time_best(reps, || {
        if threads <= 1 {
            for (i, c) in data.chunks_mut(CHUNK).enumerate() {
                work(i, c);
            }
        } else {
            // The seed's dispatch: spawn scoped threads on every call.
            let queue = std::sync::Mutex::new(data.chunks_mut(CHUNK).enumerate());
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| loop {
                        let next = queue.lock().expect("queue lock").next();
                        match next {
                            Some((i, c)) => work(i, c),
                            None => break,
                        }
                    });
                }
            });
        }
    });
    let (optimized_ms, _) = time_best(reps, || {
        epim_parallel::for_each_chunk_mut(&mut data, CHUNK, work)
    });
    entries.push(Entry {
        name: "pool_fork_join_vs_scoped_spawn".to_string(),
        baseline_ms,
        optimized_ms,
        speedup: baseline_ms / optimized_ms,
        max_abs_diff: 0.0,
    });
}

/// The epim-simd vectorized serving stages vs the scalar implementations
/// they replaced (reproduced here verbatim as bench-local baselines). Every
/// new SIMD path is pinned bitwise to its scalar reference — the house
/// invariant is "vectorize across independent outputs, never change an
/// output's FP op sequence" — so `max_abs_diff` is a hard `0` gate on all
/// four entries.
fn bench_simd_ops(entries: &mut Vec<Entry>, reps: usize) {
    // Max pooling, ResNet-stem geometry (3x3 window, stride 2, padding 1).
    // Baseline: the pre-SIMD core — gather each window into a Vec, fold
    // with `f32::max`.
    let seed_max_pool = |x: &Tensor, cfg: PoolCfg| {
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let conv_cfg = Conv2dCfg {
            stride: cfg.stride,
            padding: cfg.padding,
        };
        let (oh, ow) = conv2d_out_dims(h, w, cfg.window, cfg.window, conv_cfg).expect("geometry");
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let od = out.data_mut();
        let xd = x.data();
        for ni in 0..n {
            for ci in 0..c {
                let plane = &xd[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut vals = Vec::with_capacity(cfg.window * cfg.window);
                        for ky in 0..cfg.window {
                            let y = (oy * cfg.stride + ky) as isize - cfg.padding as isize;
                            if y < 0 || y >= h as isize {
                                continue;
                            }
                            for kx in 0..cfg.window {
                                let xx = (ox * cfg.stride + kx) as isize - cfg.padding as isize;
                                if xx < 0 || xx >= w as isize {
                                    continue;
                                }
                                vals.push(plane[y as usize * w + xx as usize]);
                            }
                        }
                        od[((ni * c + ci) * oh + oy) * ow + ox] =
                            vals.into_iter().fold(f32::NEG_INFINITY, f32::max);
                    }
                }
            }
        }
        out
    };
    // The canonical user: a ResNet stem pool on an ImageNet-sized map
    // (112x112 -> 56x56; wide enough rows for full vector interiors).
    let mut r = rng::seeded(800);
    let x = init::uniform(&[1, 64, 112, 112], -1.0, 1.0, &mut r);
    let cfg = PoolCfg {
        window: 3,
        stride: 2,
        padding: 1,
    };
    let (baseline_ms, y_base) = time_best(reps, || seed_max_pool(&x, cfg));
    let (optimized_ms, y_opt) = time_best(reps, || max_pool2d(&x, cfg).expect("geometry"));
    entries.push(Entry {
        name: "maxpool_3x3s2".to_string(),
        baseline_ms,
        optimized_ms,
        speedup: baseline_ms / optimized_ms,
        max_abs_diff: max_abs_diff(y_base.data(), y_opt.data()),
    });

    // Global average pooling: one latency-bound scalar sum chain per
    // channel (the pre-SIMD loop) vs one channel per vector lane.
    let x = init::uniform(&[8, 256, 16, 16], -1.0, 1.0, &mut r);
    let seed_gap = |x: &Tensor| {
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let mut out = Tensor::zeros(&[n, c]);
        let od = out.data_mut();
        let xd = x.data();
        let inv = 1.0 / (h * w) as f32;
        for (slot, plane) in od.iter_mut().zip(xd.chunks_exact(h * w)).take(n * c) {
            let mut acc = 0.0f32;
            for &v in plane {
                acc += v;
            }
            *slot = acc * inv;
        }
        out
    };
    let (baseline_ms, y_base) = time_best(reps, || seed_gap(&x));
    let (optimized_ms, y_opt) = time_best(reps, || global_avg_pool(&x).expect("geometry"));
    entries.push(Entry {
        name: "global_avg_pool".to_string(),
        baseline_ms,
        optimized_ms,
        speedup: baseline_ms / optimized_ms,
        max_abs_diff: max_abs_diff(y_base.data(), y_opt.data()),
    });

    // Softmax over classifier logits: `softmax_rows_scalar` (the retained
    // scalar reference, lanewise-identical exp) vs the vectorized passes.
    let x = init::uniform(&[8, 1000], -5.0, 5.0, &mut r);
    let (baseline_ms, y_base) = time_best(reps, || softmax_rows_scalar(&x).expect("rank 2"));
    let (optimized_ms, y_opt) = time_best(reps, || softmax_rows(&x).expect("rank 2"));
    entries.push(Entry {
        name: "softmax_rows_8x1000".to_string(),
        baseline_ms,
        optimized_ms,
        speedup: baseline_ms / optimized_ms,
        max_abs_diff: max_abs_diff(y_base.data(), y_opt.data()),
    });

    // Epitome replay: the pre-SIMD run loop (one `copy_from_slice` call
    // per contiguous kx run — ~590k two-float memcpys for this spec) vs
    // the dispatched run copies. Same spec as
    // `epitome_reconstruct_512x256x3x3`, but that entry's baseline is the
    // seed's element-at-a-time replay; this one isolates the SIMD step.
    let spec = EpitomeSpec::new(
        ConvShape::new(512, 256, 3, 3),
        EpitomeShape::new(256, 256, 2, 2),
    )
    .expect("legal spec");
    let data = init::kaiming_normal(&spec.shape().dims(), &mut r);
    let epi = Epitome::from_tensor(spec, data).expect("shape matches");
    let pre_pr_reconstruct = || {
        let spec = epi.spec();
        let conv = spec.conv();
        let eshape = spec.shape();
        let (e1, e2, e3) = (
            eshape.cin * eshape.h * eshape.w,
            eshape.h * eshape.w,
            eshape.w,
        );
        let (c1, c2, c3) = (conv.cin * conv.kh * conv.kw, conv.kh * conv.kw, conv.kw);
        let mut out = Tensor::zeros(&conv.dims());
        let od = out.data_mut();
        let ed = epi.tensor().data();
        for patch in spec.plan().patches() {
            for a in 0..patch.size[0] {
                let src_a = (patch.src[0] + a) * e1;
                let dst_a = (patch.dst[0] + a) * c1;
                for b in 0..patch.size[1] {
                    let src_b = src_a + (patch.src[1] + b) * e2;
                    let dst_b = dst_a + (patch.dst[1] + b) * c2;
                    for c in 0..patch.size[2] {
                        let src_flat = src_b + (patch.src[2] + c) * e3 + patch.src[3];
                        let dst_flat = dst_b + (patch.dst[2] + c) * c3 + patch.dst[3];
                        od[dst_flat..dst_flat + patch.size[3]]
                            .copy_from_slice(&ed[src_flat..src_flat + patch.size[3]]);
                    }
                }
            }
        }
        out
    };
    let (baseline_ms, y_base) = time_best(reps, pre_pr_reconstruct);
    let (optimized_ms, y_opt) = time_best(reps, || epi.reconstruct().expect("reconstructs"));
    entries.push(Entry {
        name: "epitome_reconstruct".to_string(),
        baseline_ms,
        optimized_ms,
        speedup: baseline_ms / optimized_ms,
        max_abs_diff: max_abs_diff(y_base.data(), y_opt.data()),
    });
}

/// Sentinel `max_abs_diff` for informational entries that carry no numeric
/// comparison (latency percentiles, throughput). Any nonzero value keeps the
/// bit-identity clause of the gate disarmed; `f64::EPSILON` is small enough
/// to read as "not a real diff" in the table.
const INFORMATIONAL_DIFF: f64 = f64::EPSILON;

/// Nearest-rank percentile of an unsorted latency sample, in the sample's
/// own unit (milliseconds here).
fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// Network serving over loopback TCP vs the same fleet driven in-process.
///
/// `serve_tcp_resnet_burst8` times an 8-request pipelined burst through the
/// wire protocol against the identical burst submitted straight to the
/// in-process `MultiEngine`, and pins the wire outputs bitwise to the
/// in-process outputs (`max_abs_diff` exactly 0 is the gate: the network
/// boundary must never perturb a single bit).
///
/// `serve_tcp_loadgen_qps` stores closed-loop throughput (requests/s, a
/// deliberate unit abuse of the `*_ms` fields like
/// `network_arena_peak_mb_burst8`): `baseline_ms` = in-process QPS,
/// `optimized_ms` = TCP QPS, and `speedup` = the fraction of in-process
/// throughput retained over the wire — the gate fires if the serving stack
/// ever loses >25% of that fraction relative to the committed baseline.
///
/// `serve_tcp_p{50,99,999}_ms` are informational end-to-end latency
/// percentiles from the same closed-loop run (`baseline_ms` = in-process,
/// `optimized_ms` = over TCP). Tail ratios on a shared runner are too noisy
/// to gate, so their `speedup` is pinned to exactly 1.0 and their
/// `max_abs_diff` to the informational sentinel — neither gate clause can
/// fire on them.
fn bench_serve_tcp(entries: &mut Vec<Entry>, reps: usize) {
    use epim::serve::fleet::{FleetConfig, INPUT_SHAPE};
    use epim::serve::{Client, Server};
    use std::sync::atomic::Ordering;

    // One fleet config, two builds: deterministic weight seeds make the
    // served fleet and the in-process reference bit-identical.
    let cfg = FleetConfig::default_zoo();
    let reference = cfg.build().expect("fleet builds");
    let server =
        Server::bind(cfg.build().expect("fleet builds"), "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let shutdown = server.shutdown_flag();
    let server_thread = std::thread::spawn(move || server.serve());

    // --- Pipelined burst: wire overhead + the bit-identity gate. ---
    let tenant = &cfg.tenants[0].name;
    let tid = reference.tenant_id(tenant).expect("tenant registered");
    let mut r = rng::seeded(907);
    let xs: Vec<Tensor> = (0..8)
        .map(|_| init::uniform(&INPUT_SHAPE, -1.0, 1.0, &mut r))
        .collect();

    let (baseline_ms, inproc) = time_best(reps, || {
        reference
            .infer_many(tid, xs.clone())
            .expect("burst accepted")
            .into_iter()
            .map(|res| res.expect("inference succeeds").output)
            .collect::<Vec<_>>()
    });

    let mut client = Client::connect(&addr).expect("connect");
    let (optimized_ms, wire_out) = time_best(reps, || {
        let ids: Vec<u64> = xs
            .iter()
            .map(|x| client.submit(tenant, x.clone()).expect("submit"))
            .collect();
        let mut by_id = std::collections::HashMap::new();
        for _ in &ids {
            let resp = client.recv_reply().expect("recv").expect("no error frames");
            by_id.insert(resp.id, resp.output);
        }
        ids.iter()
            .map(|id| by_id.remove(id).expect("every id answered"))
            .collect::<Vec<Tensor>>()
    });
    client.close().expect("orderly close");
    let diff = inproc
        .iter()
        .zip(&wire_out)
        .map(|(a, b)| max_abs_diff(a.data(), b.data()))
        .fold(0.0, f64::max);
    entries.push(Entry {
        name: "serve_tcp_resnet_burst8".to_string(),
        baseline_ms,
        optimized_ms,
        speedup: baseline_ms / optimized_ms,
        max_abs_diff: diff,
    });

    // --- Closed-loop load: throughput retained + latency percentiles. ---
    // Each connection replays a deterministic schedule round-robining the
    // zoo's tenants; the in-process twin drives the identical schedule
    // through `MultiEngine::infer` on plain threads.
    const CONNS: usize = 3;
    const REQS: usize = 40;
    let tenant_names: Vec<String> = cfg.tenants.iter().map(|t| t.name.clone()).collect();
    let workload: Vec<Vec<(usize, Tensor)>> = (0..CONNS)
        .map(|c| {
            let mut r = rng::seeded(2_000 + c as u64);
            (0..REQS)
                .map(|k| {
                    (
                        (c + k) % tenant_names.len(),
                        init::uniform(&INPUT_SHAPE, -1.0, 1.0, &mut r),
                    )
                })
                .collect()
        })
        .collect();
    let tids: Vec<_> = tenant_names
        .iter()
        .map(|name| reference.tenant_id(name).expect("tenant registered"))
        .collect();

    let (inproc_wall_ms, inproc_lat) = time_best(reps, || {
        std::thread::scope(|scope| {
            let handles: Vec<_> = workload
                .iter()
                .map(|conn| {
                    let reference = &reference;
                    let tids = &tids;
                    scope.spawn(move || {
                        conn.iter()
                            .map(|(t, x)| {
                                let t0 = Instant::now();
                                reference
                                    .infer(tids[*t], x.clone())
                                    .expect("inference succeeds");
                                t0.elapsed().as_secs_f64() * 1e3
                            })
                            .collect::<Vec<f64>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect::<Vec<f64>>()
        })
    });
    let (tcp_wall_ms, tcp_lat) = time_best(reps, || {
        std::thread::scope(|scope| {
            let handles: Vec<_> = workload
                .iter()
                .map(|conn| {
                    let addr = addr.clone();
                    let tenant_names = &tenant_names;
                    scope.spawn(move || {
                        let mut client = Client::connect(&addr).expect("connect");
                        let lat = conn
                            .iter()
                            .map(|(t, x)| {
                                let t0 = Instant::now();
                                client
                                    .infer(&tenant_names[*t], x.clone())
                                    .expect("round trip")
                                    .expect("no error frames");
                                t0.elapsed().as_secs_f64() * 1e3
                            })
                            .collect::<Vec<f64>>();
                        client.close().expect("orderly close");
                        lat
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect::<Vec<f64>>()
        })
    });

    let total = (CONNS * REQS) as f64;
    let qps_inproc = total / (inproc_wall_ms / 1e3);
    let qps_tcp = total / (tcp_wall_ms / 1e3);
    entries.push(Entry {
        name: "serve_tcp_loadgen_qps".to_string(),
        baseline_ms: qps_inproc,
        optimized_ms: qps_tcp,
        speedup: qps_tcp / qps_inproc,
        max_abs_diff: INFORMATIONAL_DIFF,
    });
    for (name, p) in [
        ("serve_tcp_p50_ms", 50.0),
        ("serve_tcp_p99_ms", 99.0),
        ("serve_tcp_p999_ms", 99.9),
    ] {
        entries.push(Entry {
            name: name.to_string(),
            baseline_ms: percentile(&inproc_lat, p),
            optimized_ms: percentile(&tcp_lat, p),
            speedup: 1.0,
            max_abs_diff: INFORMATIONAL_DIFF,
        });
    }

    shutdown.store(true, Ordering::SeqCst);
    server_thread
        .join()
        .expect("server thread")
        .expect("server drains cleanly");
}

/// A >25% relative slowdown (in speedup-over-seed terms) fails the gate.
const SLOWDOWN_TOLERANCE: f64 = 1.25;

/// Compares a fresh report against the committed baseline, returning one
/// message per violated gate (empty = pass).
fn regressions(baseline: &Report, fresh: &Report) -> Vec<String> {
    let mut problems = Vec::new();
    if baseline.num_threads != fresh.num_threads {
        // Speedups are seed-relative so they tolerate machine changes, but
        // a thread-count mismatch shifts them legitimately; surface it.
        println!(
            "note: baseline measured with {} thread(s), this run uses {} — \
             speedup comparisons may shift",
            baseline.num_threads, fresh.num_threads
        );
    }
    for base in &baseline.entries {
        let Some(now) = fresh.entries.iter().find(|e| e.name == base.name) else {
            problems.push(format!(
                "{}: entry missing from the fresh run (the list is append-only)",
                base.name
            ));
            continue;
        };
        if base.max_abs_diff == 0.0 && now.max_abs_diff != 0.0 {
            problems.push(format!(
                "{}: bit-identity gate broken (max|diff| {} was exactly 0 in the baseline)",
                base.name, now.max_abs_diff
            ));
        }
        if now.speedup < base.speedup / SLOWDOWN_TOLERANCE {
            problems.push(format!(
                "{}: speedup regressed {:.2}x -> {:.2}x (more than {:.0}% slowdown)",
                base.name,
                base.speedup,
                now.speedup,
                (SLOWDOWN_TOLERANCE - 1.0) * 100.0
            ));
        }
    }
    problems
}

/// Runs the full sweep at the given repetition count.
fn run_sweep(reps: usize) -> Report {
    let mut entries = Vec::new();
    bench_gemm(&mut entries, reps, &[128, 256, 512]);
    bench_conv(&mut entries, reps);
    bench_datapath(&mut entries, reps);
    bench_reconstruct(&mut entries, reps);
    bench_runtime(&mut entries, reps);
    bench_pool(&mut entries, reps);
    bench_conv_batched(&mut entries, reps);
    bench_network(&mut entries, reps);
    bench_tenancy(&mut entries, reps);
    bench_fusion(&mut entries, reps);
    bench_tracing(&mut entries, reps);
    bench_faults(&mut entries, reps);
    bench_simd_ops(&mut entries, reps);
    bench_serve_tcp(&mut entries, reps);
    Report {
        schema_version: 1,
        generated_by: "epim-bench bench_kernels".to_string(),
        num_threads: epim::tensor::ops::gemm::num_threads_in_use(),
        entries,
    }
}

fn print_report(report: &Report) {
    println!(
        "{:<44} {:>12} {:>12} {:>9} {:>12}",
        "kernel", "seed (ms)", "now (ms)", "speedup", "max|diff|"
    );
    for e in &report.entries {
        println!(
            "{:<44} {:>12.3} {:>12.3} {:>8.2}x {:>12.2e}",
            e.name, e.baseline_ms, e.optimized_ms, e.speedup, e.max_abs_diff
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check: Option<String> = args.iter().position(|a| a == "--check").map(|i| {
        // The baseline path is optional; a following flag is not a path.
        match args.get(i + 1) {
            Some(next) if !next.starts_with("--") => next.clone(),
            _ => "BENCH_kernels.json".to_string(),
        }
    });
    // The gate runs at --quick reps; a suspected regression triggers one
    // confirmation re-run below, so transient scheduler noise on a loaded
    // runner does not fail the gate.
    let reps = if quick || check.is_some() { 3 } else { 7 };

    let mut report = run_sweep(reps);
    let Some(baseline_path) = check else {
        // The committed baseline is what every future CI gate run is
        // measured against, so commit a *stable* estimate: three sweeps,
        // per-entry median by speedup (and the worst observed
        // max_abs_diff — correctness is never averaged away).
        let more = [run_sweep(reps), run_sweep(reps)];
        for entry in &mut report.entries {
            // (speedup, baseline_ms, optimized_ms, max_abs_diff) per run.
            let mut candidates: Vec<(f64, f64, f64, f64)> = more
                .iter()
                .filter_map(|r| r.entries.iter().find(|e| e.name == entry.name))
                .map(|e| (e.speedup, e.baseline_ms, e.optimized_ms, e.max_abs_diff))
                .collect();
            candidates.push((
                entry.speedup,
                entry.baseline_ms,
                entry.optimized_ms,
                entry.max_abs_diff,
            ));
            candidates.sort_by(|a, b| a.0.total_cmp(&b.0));
            let (speedup, baseline_ms, optimized_ms, _) = candidates[candidates.len() / 2];
            entry.speedup = speedup;
            entry.baseline_ms = baseline_ms;
            entry.optimized_ms = optimized_ms;
            entry.max_abs_diff = candidates.iter().map(|c| c.3).fold(0.0, f64::max);
        }
        print_report(&report);
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write("BENCH_kernels.json", json + "\n").expect("BENCH_kernels.json writable");
        println!("\nwrote BENCH_kernels.json");
        return;
    };

    let baseline_json = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let baseline: Report = serde_json::from_str(&baseline_json).expect("baseline parses");
    let mut problems = regressions(&baseline, &report);
    if !problems.is_empty() {
        // Timing noise is one-sided (contention only makes entries look
        // slower), so re-measure once and keep each entry's faster
        // observation; a genuine regression survives, a descheduled
        // quick pass does not.
        println!("suspected regressions; re-measuring to filter timing noise");
        let second = run_sweep(reps);
        for entry in &mut report.entries {
            if let Some(again) = second.entries.iter().find(|e| e.name == entry.name) {
                if again.speedup > entry.speedup {
                    entry.baseline_ms = again.baseline_ms;
                    entry.optimized_ms = again.optimized_ms;
                    entry.speedup = again.speedup;
                }
                // Timing keeps the faster observation, correctness the
                // worse one: an identity break in *either* run must
                // fail the gate, never be papered over by the retry.
                entry.max_abs_diff = entry.max_abs_diff.max(again.max_abs_diff);
            }
        }
        problems = regressions(&baseline, &report);
    }

    print_report(&report);
    // Never clobber the committed baseline from the gate; the fresh
    // report goes to a sibling file (uploaded by CI as an artifact).
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_kernels.check.json", json + "\n")
        .expect("BENCH_kernels.check.json writable");
    println!("\nwrote BENCH_kernels.check.json");
    if problems.is_empty() {
        println!(
            "bench gate: PASS ({} entries within {:.0}% of {baseline_path})",
            baseline.entries.len(),
            (SLOWDOWN_TOLERANCE - 1.0) * 100.0
        );
    } else {
        eprintln!("bench gate: FAIL against {baseline_path}");
        for p in &problems {
            eprintln!("  - {p}");
        }
        std::process::exit(1);
    }
}
