//! Regenerates Figure 3: per-layer parameter size, latency and energy
//! for three ResNet-50 layers, baseline convolution versus epitome.
//!
//! `cargo run -p epim-bench --release --bin fig3`

use epim_bench::experiments::fig3::fig3;
use epim_bench::format::{num, Table};

fn main() {
    println!("Figure 3: parameter size, latency and energy per layer");
    println!("(conv baseline vs 1024x256 epitome, FP32, no optimizations)\n");
    let mut t = Table::new(vec![
        "Layer",
        "(inventory name)",
        "Params conv (k)",
        "Params epitome (k)",
        "Latency conv (ms)",
        "Latency epitome (ms)",
        "Energy conv (0.1mJ)",
        "Energy epitome (0.1mJ)",
    ]);
    for e in fig3() {
        t.row(vec![
            e.label.clone(),
            e.layer_name.clone(),
            num(e.conv_params_k, 1),
            num(e.epitome_params_k, 1),
            num(e.conv_latency_ms, 2),
            num(e.epitome_latency_ms, 2),
            num(e.conv_energy_01mj, 2),
            num(e.epitome_energy_01mj, 2),
        ]);
    }
    println!("{}", t.render());
    println!("reading: late layers (L67) trade ~1M parameters for a modest");
    println!("latency/energy overhead; early layers (L9) save little and pay");
    println!("comparably — the motivation for layer-wise design (paper §5.2).");
}
