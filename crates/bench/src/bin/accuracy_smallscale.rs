//! The ImageNet-substitution experiment: trains conv vs epitome vs
//! quantized-epitome CNNs on synthetic data with real SGD (DESIGN.md §2)
//! and reports test accuracies.
//!
//! `cargo run -p epim-bench --release --bin accuracy_smallscale`

use epim::models::training::{
    run_small_scale_experiment, run_small_scale_experiment_avg, SmallScaleConfig, SyntheticDataset,
};
use epim_bench::format::{num, Table};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let cfg = if fast {
        SmallScaleConfig {
            per_class: 24,
            epochs: 8,
            ..SmallScaleConfig::default()
        }
    } else {
        // Full mode uses the harder striped-texture task (frequency
        // detection), where compression and low-bit quantization actually
        // cost accuracy — the blobs task saturates at 100% for every
        // variant.
        SmallScaleConfig {
            classes: 6,
            image_size: 12,
            per_class: 60,
            epochs: 25,
            quant_bits: 2,
            dataset: SyntheticDataset::Stripes,
            // Paper-like ~2x compression (cout halved, wrapping factor 2).
            epitome_shape: (8, 8, 3, 3),
            ..SmallScaleConfig::default()
        }
    };
    println!(
        "Small-scale accuracy experiment: {} classes, {}x{} images, {} per class, {} epochs ({:?})",
        cfg.classes, cfg.image_size, cfg.image_size, cfg.per_class, cfg.epochs, cfg.dataset
    );
    let res = if fast {
        run_small_scale_experiment(&cfg)
    } else {
        // Average over 5 seeds: individual tiny-test-set runs are noisy.
        println!("(averaging over 5 seeds; ~1 min)");
        run_small_scale_experiment_avg(&cfg, 5)
    };
    let mut t = Table::new(vec!["Variant", "Test accuracy (%)"]);
    t.row(vec![
        "conv CNN".to_string(),
        num(100.0 * res.conv_acc as f64, 1),
    ]);
    t.row(vec![
        format!("epitome CNN ({:.1}x fewer params)", res.param_compression),
        num(100.0 * res.epitome_acc as f64, 1),
    ]);
    t.row(vec![
        format!("epitome + naive {}-bit QAT", cfg.quant_bits),
        num(100.0 * res.epitome_naive_quant_acc as f64, 1),
    ]);
    t.row(vec![
        format!("epitome + overlap-aware {}-bit QAT", cfg.quant_bits),
        num(100.0 * res.epitome_overlap_quant_acc as f64, 1),
    ]);
    println!("{}", t.render());
    println!("reading: the epitome trains to conv-level accuracy at ~2x compression");
    println!("(the paper's central accuracy claim), and low-bit QAT through the");
    println!("reconstruction adjoint works. The overlap-vs-naive range ablation is");
    println!("a wash at this scale - its benefit needs trained-weight outlier");
    println!("structure; see `table2`'s measured weight-space block, where the");
    println!("overlap-weighted range does reduce repetition-weighted error.");
}
