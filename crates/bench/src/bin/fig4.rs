//! Regenerates Figure 4: latency / energy / EDP of the uniform epitome
//! versus EPIM-Channel-Wrapping, EPIM-Evo-Search and EPIM-Opt, across
//! compression settings.
//!
//! `cargo run -p epim-bench --release --bin fig4` (add `--fast` for a
//! reduced-search preview)

use epim_bench::experiments::fig4::{fig4, headline, Method};
use epim_bench::format::{num, Table};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let points = fig4(fast);

    for (metric, pick) in [
        ("(a) Latency (ms)", 0usize),
        ("(b) Energy (mJ)", 1),
        ("(c) EDP (mJ*ms)", 2),
    ] {
        println!("Figure 4{metric}");
        let mut t = Table::new(vec![
            "Config",
            "XB compression",
            Method::Uniform.label(),
            Method::ChannelWrapping.label(),
            Method::EvoSearch.label(),
            Method::Opt.label(),
        ]);
        let configs: Vec<String> = {
            let mut seen = Vec::new();
            for p in &points {
                if !seen.contains(&p.config) {
                    seen.push(p.config.clone());
                }
            }
            seen
        };
        for cfg in &configs {
            let find = |m: Method| {
                points
                    .iter()
                    .find(|p| &p.config == cfg && p.method == m)
                    .expect("point exists")
            };
            let value = |m: Method| {
                let p = find(m);
                match pick {
                    0 => p.latency_ms,
                    1 => p.energy_mj,
                    _ => p.edp,
                }
            };
            t.row(vec![
                cfg.clone(),
                num(find(Method::Uniform).xbar_compression, 2),
                num(value(Method::Uniform), 2),
                num(value(Method::ChannelWrapping), 2),
                num(value(Method::EvoSearch), 2),
                num(value(Method::Opt), 2),
            ]);
        }
        println!("{}", t.render());
    }

    let h = headline(&points);
    println!(
        "EPIM-Opt vs Uniform-Epitome (best across configs): {:.2}x speedup, \
         {:.2}x energy savings, {:.2}x EDP reduction",
        h.speedup, h.energy_saving, h.edp_reduction
    );
    println!("(paper: up to 3.07x / 2.36x / 7.13x)");
}
