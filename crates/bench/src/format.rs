//! Minimal fixed-width table printing for the experiment binaries.

/// A printable table: header plus rows of equal arity.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table with padded columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimals, or `"-"` for NaN (used for
/// table cells the paper leaves blank).
pub fn num(v: f64, digits: usize) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.digits$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_padded_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "2.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn num_formats() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(num(f64::NAN, 2), "-");
    }
}
