//! Ablation studies over the design choices DESIGN.md calls out:
//! crossbar alignment (§4.1), channel wrapping (§5.3), the overlap-weight
//! hyperparameter `w1` (Eq. 4–5), and robustness of the data path to
//! analog non-idealities (programming noise, finite ADC precision).

use epim::core::MappedMatrix;
use epim::core::{ConvShape, Epitome, EpitomeDesigner};
use epim::pim::datapath::{AnalogModel, DataPath};
use epim::pim::{Mapping, Precision};
use epim::quant::{quantize_epitome, QuantGranularity, RangeEstimator};
use epim::tensor::ops::Conv2dCfg;
use epim::tensor::{init, rng, Tensor};

/// Alignment ablation result for one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignmentAblation {
    /// Layer shape label.
    pub conv: String,
    /// Utilization with crossbar-aligned design.
    pub aligned_utilization: f64,
    /// Utilization with unaligned (free-shape) design.
    pub unaligned_utilization: f64,
    /// Crossbars with aligned design.
    pub aligned_xbs: usize,
    /// Crossbars with unaligned design.
    pub unaligned_xbs: usize,
}

/// Compares crossbar-aligned epitome shapes (§4.1) against unaligned ones
/// of the same nominal size, on a spread of ResNet-50 layer shapes.
pub fn alignment_ablation() -> Vec<AlignmentAblation> {
    let aligned = EpitomeDesigner::new(128, 128);
    // A designer with 1x1 "crossbars" never rounds: free shapes.
    let unaligned = EpitomeDesigner::new(1, 1);
    let xb = epim::pim::CrossbarConfig::default();
    let prec = Precision::new(9, 9);
    [
        ConvShape::new(256, 128, 3, 3),
        ConvShape::new(512, 256, 3, 3),
        ConvShape::new(512, 512, 3, 3),
        ConvShape::new(2048, 512, 1, 1),
    ]
    .iter()
    .map(|&conv| {
        let rows = conv.matrix_rows() / 2;
        let cout = conv.cout / 2;
        let a = aligned.design(conv, rows, cout).expect("legal design");
        let u = unaligned.design(conv, rows, cout).expect("legal design");
        let ma = Mapping::new(MappedMatrix::from_epitome(a.shape()), xb, prec)
            .expect("mapping succeeds");
        let mu = Mapping::new(MappedMatrix::from_epitome(u.shape()), xb, prec)
            .expect("mapping succeeds");
        AlignmentAblation {
            conv: conv.to_string(),
            aligned_utilization: ma.utilization,
            unaligned_utilization: mu.utilization,
            aligned_xbs: ma.crossbars,
            unaligned_xbs: mu.crossbars,
        }
    })
    .collect()
}

/// One point of the overlap-weight (`w1`) sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct W1Point {
    /// The overlap weight `w1` (with `w2 = 1 − w1`).
    pub w1: f32,
    /// Repetition-weighted MSE of the 3-bit quantized epitome.
    pub weighted_mse: f64,
    /// Plain MSE.
    pub mse: f64,
}

fn sample_epitome(seed: u64) -> Epitome {
    let spec = EpitomeDesigner::new(128, 128)
        .design(ConvShape::new(512, 256, 3, 3), 1024, 256)
        .expect("legal design");
    let mut r = rng::seeded(seed);
    let data = init::kaiming_normal(&spec.shape().dims(), &mut r);
    Epitome::from_tensor(spec, data).expect("shape matches")
}

fn weighted_mse(original: &Epitome, quantized: &Epitome) -> f64 {
    let reps = original.repetition_map();
    let diff = quantized
        .tensor()
        .sub(original.tensor())
        .expect("same shape");
    let num: f64 = diff
        .data()
        .iter()
        .zip(reps.data())
        .map(|(&d, &c)| (d as f64 * d as f64) * c as f64)
        .sum();
    num / reps.sum() as f64
}

/// Sweeps the Eq. 4–5 hyperparameter `w1` from pure min/max (`0.5/0.5`
/// behaves like an unweighted blend) to overlap-only (`1.0`), measuring
/// 3-bit quantization error on a real epitome.
pub fn w1_sweep(seed: u64) -> Vec<W1Point> {
    let epi = sample_epitome(seed);
    [0.5f32, 0.6, 0.7, 0.8, 0.9, 1.0]
        .iter()
        .map(|&w1| {
            let est = RangeEstimator::OverlapWeighted { w1, w2: 1.0 - w1 };
            let (q, rep) = quantize_epitome(
                &epi,
                3,
                QuantGranularity::PerCrossbar {
                    rows: 128,
                    cols: 128,
                },
                &est,
            )
            .expect("quantization succeeds");
            W1Point {
                w1,
                weighted_mse: weighted_mse(&epi, &q),
                mse: rep.mse,
            }
        })
        .collect()
}

/// One point of the analog-robustness sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalogPoint {
    /// Programming-noise std (relative).
    pub noise_std: f32,
    /// ADC bits (`None` = ideal readout).
    pub adc_bits: Option<u8>,
    /// Output-feature-map MSE against the ideal data path.
    pub output_mse: f64,
}

/// Runs a small epitome layer through the functional data path under a
/// grid of analog non-idealities and reports output error versus ideal.
pub fn analog_sweep(seed: u64) -> Vec<AnalogPoint> {
    let spec = EpitomeDesigner::new(32, 32)
        .design(ConvShape::new(32, 16, 3, 3), 72, 16)
        .expect("legal design");
    let mut r = rng::seeded(seed);
    let data = init::kaiming_normal(&spec.shape().dims(), &mut r);
    let epi = Epitome::from_tensor(spec, data).expect("shape matches");
    let cfg = Conv2dCfg {
        stride: 1,
        padding: 1,
    };
    let x: Tensor = init::uniform(&[1, 16, 8, 8], -1.0, 1.0, &mut r);
    let ideal = DataPath::new(&epi, cfg, true)
        .expect("data path builds")
        .execute(&x)
        .expect("execution succeeds")
        .0;

    let mut points = Vec::new();
    for &noise_std in &[0.0f32, 0.01, 0.03, 0.10] {
        for &adc_bits in &[None, Some(6u8), Some(8)] {
            let dp = DataPath::with_analog(
                &epi,
                cfg,
                true,
                AnalogModel {
                    weight_noise_std: noise_std,
                    adc_bits,
                    noise_seed: 7,
                    ..AnalogModel::ideal()
                },
            )
            .expect("data path builds");
            let out = dp.execute(&x).expect("execution succeeds").0;
            points.push(AnalogPoint {
                noise_std,
                adc_bits,
                output_mse: out.mse(&ideal).expect("same shape") as f64,
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_improves_utilization() {
        let rows = alignment_ablation();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.aligned_utilization >= r.unaligned_utilization - 1e-9,
                "{r:?}"
            );
            assert!(r.aligned_utilization > 0.9, "{r:?}");
        }
        // At least one layer shows a real gap (ragged unaligned shapes).
        assert!(rows
            .iter()
            .any(|r| r.aligned_utilization > r.unaligned_utilization + 0.01));
    }

    #[test]
    fn w1_sweep_trades_weighted_for_plain_error() {
        let pts = w1_sweep(3);
        assert_eq!(pts.len(), 6);
        for p in &pts {
            assert!(p.mse.is_finite() && p.mse > 0.0);
            assert!(p.weighted_mse.is_finite() && p.weighted_mse > 0.0);
        }
        // The paper's default (w1 around 0.7) should not be worse on
        // repetition-weighted error than the unweighted blend.
        let at = |w: f32| {
            pts.iter()
                .find(|p| (p.w1 - w).abs() < 1e-6)
                .expect("sweep point exists")
        };
        assert!(at(0.7).weighted_mse <= at(0.5).weighted_mse * 1.05);
    }

    #[test]
    fn analog_sweep_monotone_in_noise() {
        let pts = analog_sweep(4);
        // Ideal point: zero error.
        let ideal = pts
            .iter()
            .find(|p| p.noise_std == 0.0 && p.adc_bits.is_none())
            .expect("grid contains the ideal point");
        assert_eq!(ideal.output_mse, 0.0);
        // With ideal ADC, error grows with noise.
        let errs: Vec<f64> = [0.01f32, 0.03, 0.10]
            .iter()
            .map(|&s| {
                pts.iter()
                    .find(|p| p.noise_std == s && p.adc_bits.is_none())
                    .expect("point exists")
                    .output_mse
            })
            .collect();
        assert!(errs[0] < errs[1] && errs[1] < errs[2], "{errs:?}");
        // Coarser ADC means more error at zero noise.
        let adc6 = pts
            .iter()
            .find(|p| p.noise_std == 0.0 && p.adc_bits == Some(6))
            .expect("point exists")
            .output_mse;
        let adc8 = pts
            .iter()
            .find(|p| p.noise_std == 0.0 && p.adc_bits == Some(8))
            .expect("point exists")
            .output_mse;
        assert!(adc6 > adc8, "6-bit {adc6} vs 8-bit {adc8}");
    }
}
