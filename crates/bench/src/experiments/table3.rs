//! Table 3: epitome vs element pruning vs PIM-Prune — accuracy and
//! *parameter* compression rates (the paper compares parameter rates
//! because crossbar rates are ill-defined for unstructured sparsity).
//!
//! Compression here is **measured** (element pruning on real epitome
//! tensors, block pruning on real weight matrices); accuracy comes from
//! the calibrated surrogate.

use epim::core::Epitome;
use epim::models::accuracy::AccuracyModel;
use epim::models::network::OperatorChoice;
use epim::models::resnet::{resnet101, resnet50, Backbone};
use epim::prune::{element_prune, prune_blocks, BlockPruneConfig};
use epim::tensor::{init, rng};

use super::uniform_epim;

/// Sparse-index storage overhead applied to unstructured survivors: a CSR
/// row pointer + column index costs ≈ 29% of an FP32 value at ResNet
/// scale (9-bit column index / 32-bit weight); the paper's 3.49× for
/// "epitome (2.25×) + 50% pruning" implies exactly this overhead
/// (2.25 × 2 / 1.29 ≈ 3.49).
pub const SPARSE_INDEX_OVERHEAD: f64 = 1.29;

/// One row of Table 3 for one model.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Method label.
    pub method: String,
    /// Top-1 accuracy (%), surrogate.
    pub accuracy: f64,
    /// Parameter compression rate, measured.
    pub compression: f64,
}

/// Generates the Table 3 rows for one backbone.
pub fn rows_for(backbone: Backbone) -> Vec<Table3Row> {
    let acc = if backbone.name == "ResNet50" {
        AccuracyModel::resnet50()
    } else {
        AccuracyModel::resnet101()
    };
    let epim = uniform_epim(backbone.clone());
    let cr_epitome = epim.param_compression();
    let mut rows = Vec::new();

    // Row 1: plain epitome.
    rows.push(Table3Row {
        method: "Epitome".into(),
        accuracy: acc.epim_accuracy(
            cr_epitome,
            epim::models::accuracy::WeightScheme::Fp32,
            epim::models::accuracy::QuantMethod::PerCrossbarOverlap,
        ),
        compression: cr_epitome,
    });

    // Row 2: epitome + 50% element pruning, measured on the epitome
    // tensors themselves.
    let mut r = rng::seeded(3);
    let mut kept = 0usize;
    let mut total_before = 0usize;
    for choice in epim.choices() {
        if let OperatorChoice::Epitome(spec) = choice {
            let data = init::kaiming_normal(&spec.shape().dims(), &mut r);
            let e = Epitome::from_tensor(spec.clone(), data).expect("shape matches");
            let (_, rep) = element_prune(e.tensor(), 0.5).expect("ratio valid");
            kept += rep.params_after;
            total_before += rep.params_before;
        }
    }
    let element_cr = total_before as f64 / (kept as f64 * SPARSE_INDEX_OVERHEAD);
    rows.push(Table3Row {
        method: "Epitome + Pruning".into(),
        accuracy: acc.epitome_plus_pruning_accuracy(cr_epitome, 0.5),
        compression: cr_epitome * element_cr,
    });

    // Rows 3-4: PIM-Prune at 50% / 75%, measured by block pruning the
    // real (randomly initialized) weight matrices with 128x128 blocks.
    for ratio in [0.50, 0.75] {
        let mut before = 0usize;
        let mut after = 0usize;
        let mut r = rng::seeded(4);
        for layer in &backbone.layers {
            let conv = layer.conv;
            let w = init::kaiming_normal(&conv.dims(), &mut r);
            let matrix = w
                .reshape(&[conv.matrix_rows(), conv.matrix_cols()])
                .expect("params match");
            let res = prune_blocks(
                &matrix,
                &BlockPruneConfig {
                    block_rows: 128,
                    block_cols: 128,
                    ratio,
                },
            )
            .expect("valid config");
            before += res.report.params_before;
            after += res.report.params_after;
        }
        rows.push(Table3Row {
            method: format!("PIM-Prune {}%", (ratio * 100.0) as u32),
            accuracy: acc.pim_prune_accuracy(ratio),
            compression: before as f64 / after as f64,
        });
    }
    rows
}

/// Full Table 3 (both backbones), as `(model, rows)` pairs.
pub fn table3() -> Vec<(String, Vec<Table3Row>)> {
    vec![
        ("ResNet-50".to_string(), rows_for(resnet50())),
        ("ResNet-101".to_string(), rows_for(resnet101())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_rows_match_paper_shape() {
        let rows = rows_for(resnet50());
        assert_eq!(rows.len(), 4);
        let epitome = &rows[0];
        let combined = &rows[1];
        let p50 = &rows[2];
        let p75 = &rows[3];

        // Accuracy anchors.
        assert!((epitome.accuracy - 74.00).abs() < 0.30);
        assert!((combined.accuracy - 73.18).abs() < 0.30);
        assert!((p50.accuracy - 72.77).abs() < 0.05);
        assert!((p75.accuracy - 72.19).abs() < 0.05);

        // Compression shape: combined > prune75 > epitome ~ 2.25 >
        // prune50.
        assert!(
            (1.8..3.2).contains(&epitome.compression),
            "{}",
            epitome.compression
        );
        assert!(combined.compression > epitome.compression);
        assert!(
            (combined.compression - epitome.compression * 2.0 / SPARSE_INDEX_OVERHEAD).abs()
                < 0.1 * combined.compression
        );
        assert!((1.6..2.4).contains(&p50.compression), "{}", p50.compression);
        assert!((3.0..4.6).contains(&p75.compression), "{}", p75.compression);

        // The paper's point: epitome accuracy beats PIM-Prune 50% despite
        // higher compression.
        assert!(epitome.accuracy > p50.accuracy);
        assert!(epitome.compression > p50.compression);
    }

    #[test]
    fn resnet101_rows_consistent() {
        let rows = rows_for(resnet101());
        assert!((rows[0].accuracy - 76.56).abs() < 0.30);
        assert!((rows[2].accuracy - 75.82).abs() < 0.05);
        assert!(rows[0].accuracy > rows[3].accuracy);
    }

    #[test]
    fn table3_has_both_models() {
        let t = table3();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].1.len(), 4);
        assert_eq!(t[1].1.len(), 4);
    }
}
