//! Figure 4: latency, energy and EDP of the uniform epitome versus
//! EPIM-Channel-Wrapping, EPIM-Evo-Search, and EPIM-Opt (both combined),
//! across compression levels.
//!
//! Per the paper: at similar compression, EPIM-Opt achieves up to 3.07×
//! speedup, 2.36× energy savings and 7.13× lower EDP than the uniform
//! design.

use epim::models::network::Network;
use epim::models::resnet::resnet50;
use epim::pim::Precision;
use epim::search::Objective;

use super::{cost_model, designer, searched_network, uniform_epim};

/// The four methods compared in the figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Uniform epitome, no optimization.
    Uniform,
    /// Uniform epitome + output channel wrapping (§5.3).
    ChannelWrapping,
    /// Layer-wise evolutionary search, no wrapping (§5.2).
    EvoSearch,
    /// Both optimizations — the full EPIM-Opt.
    Opt,
}

impl Method {
    /// All methods in display order.
    pub fn all() -> [Method; 4] {
        [
            Method::Uniform,
            Method::ChannelWrapping,
            Method::EvoSearch,
            Method::Opt,
        ]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Method::Uniform => "Uniform-Epitome",
            Method::ChannelWrapping => "EPIM-Channel-Wrapping",
            Method::EvoSearch => "EPIM-Evo-Search",
            Method::Opt => "EPIM-Opt",
        }
    }
}

/// One point of Figure 4: a method evaluated at one compression setting.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Point {
    /// Uniform configuration label, e.g. `"1024x256"`.
    pub config: String,
    /// Method.
    pub method: Method,
    /// Crossbar compression vs the conv baseline.
    pub xbar_compression: f64,
    /// Network latency, ms.
    pub latency_ms: f64,
    /// Network energy, mJ.
    pub energy_mj: f64,
    /// Energy-delay product, mJ·ms.
    pub edp: f64,
}

fn evaluate(
    net: &Network,
    wrapping: bool,
    prec: Precision,
    baseline_xbs: usize,
) -> (f64, f64, f64, f64) {
    let costs = net.simulate(&cost_model(wrapping), prec);
    (
        baseline_xbs as f64 / costs.crossbars() as f64,
        costs.latency_ms(),
        costs.energy_mj(),
        costs.latency_ms() * costs.energy_mj(),
    )
}

/// Generates the Figure 4 sweep on ResNet-50 at W9A9.
///
/// `fast` shrinks the evolutionary searches for unit testing.
pub fn fig4(fast: bool) -> Vec<Fig4Point> {
    let prec = Precision::new(9, 9);
    let backbone = resnet50();
    let baseline_xbs = Network::baseline(backbone.clone())
        .simulate(&cost_model(false), prec)
        .crossbars();

    // Uniform configurations spanning the figure's compression axis.
    let configs: &[(usize, usize)] = &[(2048, 512), (1024, 256), (512, 128), (256, 256)];
    let mut points = Vec::new();
    for &(rows, cout) in configs {
        let label = format!("{rows}x{cout}");
        let uniform = if (rows, cout) == (1024, 256) {
            uniform_epim(backbone.clone())
        } else {
            Network::uniform_epitome(backbone.clone(), &designer(), rows, cout)
                .expect("legal uniform design")
        };
        let budget = super::epitome_layer_crossbars(&uniform, prec);

        for method in Method::all() {
            let point = match method {
                Method::Uniform | Method::ChannelWrapping => {
                    let wrapping = method == Method::ChannelWrapping;
                    let (cr, lat, en, edp) = evaluate(&uniform, wrapping, prec, baseline_xbs);
                    Fig4Point {
                        config: label.clone(),
                        method,
                        xbar_compression: cr,
                        latency_ms: lat,
                        energy_mj: en,
                        edp,
                    }
                }
                Method::EvoSearch | Method::Opt => {
                    // As in the paper, each subplot's searched curve
                    // optimizes that subplot's metric: latency from the
                    // latency-objective search, energy from the energy
                    // objective, EDP from the EDP objective.
                    let wrapping = method == Method::Opt;
                    let per_objective = |objective: Objective| {
                        let net = searched_network(
                            &backbone,
                            objective,
                            prec,
                            wrapping,
                            budget,
                            Some(&uniform),
                            fast,
                        );
                        evaluate(&net, wrapping, prec, baseline_xbs)
                    };
                    let (cr, lat, _, _) = per_objective(Objective::Latency);
                    let (_, _, en, _) = per_objective(Objective::Energy);
                    let (_, _, _, edp) = per_objective(Objective::Edp);
                    Fig4Point {
                        config: label.clone(),
                        method,
                        xbar_compression: cr,
                        latency_ms: lat,
                        energy_mj: en,
                        edp,
                    }
                }
            };
            points.push(point);
        }
    }
    points
}

/// Headline ratios of the figure: Opt versus Uniform at one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Headline {
    /// Speedup of EPIM-Opt over the uniform epitome.
    pub speedup: f64,
    /// Energy saving factor.
    pub energy_saving: f64,
    /// EDP reduction factor.
    pub edp_reduction: f64,
}

/// Computes the best Opt-vs-Uniform ratios across the sweep (the paper
/// quotes "up to 3.07× / 2.36× / 7.13×").
pub fn headline(points: &[Fig4Point]) -> Fig4Headline {
    let mut best = Fig4Headline {
        speedup: 0.0,
        energy_saving: 0.0,
        edp_reduction: 0.0,
    };
    let configs: std::collections::BTreeSet<&str> =
        points.iter().map(|p| p.config.as_str()).collect();
    for cfg in configs {
        let find = |m: Method| {
            points
                .iter()
                .find(|p| p.config == cfg && p.method == m)
                .expect("every method evaluated per config")
        };
        let uni = find(Method::Uniform);
        let opt = find(Method::Opt);
        best.speedup = best.speedup.max(uni.latency_ms / opt.latency_ms);
        best.energy_saving = best.energy_saving.max(uni.energy_mj / opt.energy_mj);
        best.edp_reduction = best.edp_reduction.max(uni.edp / opt.edp);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_methods_and_configs() {
        let pts = fig4(true);
        assert_eq!(pts.len(), 4 * 4);
        for m in Method::all() {
            assert!(pts.iter().any(|p| p.method == m));
        }
    }

    #[test]
    fn optimizations_never_hurt() {
        let pts = fig4(true);
        let configs: std::collections::BTreeSet<String> =
            pts.iter().map(|p| p.config.clone()).collect();
        for cfg in configs {
            let find = |m: Method| {
                pts.iter()
                    .find(|p| p.config == cfg && p.method == m)
                    .unwrap()
            };
            let uni = find(Method::Uniform);
            let cw = find(Method::ChannelWrapping);
            let opt = find(Method::Opt);
            assert!(
                cw.latency_ms <= uni.latency_ms * 1.001,
                "{cfg}: wrapping latency"
            );
            assert!(
                cw.energy_mj <= uni.energy_mj * 1.001,
                "{cfg}: wrapping energy"
            );
            // Opt searches the candidate ladder, which cannot express the
            // uniform shapes exactly — allow a small representability gap.
            assert!(
                opt.latency_ms <= cw.latency_ms * 1.10,
                "{cfg}: opt latency {} vs wrapping {}",
                opt.latency_ms,
                cw.latency_ms
            );
            assert!(opt.edp <= uni.edp * 1.10, "{cfg}: opt EDP");
        }
    }

    #[test]
    fn headline_ratios_in_paper_regime() {
        // Paper: up to 3.07x speedup, 2.36x energy, 7.13x EDP. With the
        // fast search the exact ratios differ; require the same order of
        // magnitude and the EDP ratio to compound.
        let pts = fig4(true);
        let h = headline(&pts);
        assert!(h.speedup > 1.2, "speedup {}", h.speedup);
        assert!(h.energy_saving > 1.1, "energy {}", h.energy_saving);
        assert!(
            h.edp_reduction > h.speedup.max(h.energy_saving),
            "EDP reduction must compound: {h:?}"
        );
        assert!(h.speedup < 20.0, "implausible speedup {}", h.speedup);
    }

    #[test]
    fn compression_increases_latency_for_uniform() {
        // §5.1: along the uniform ladder, more crossbar compression means
        // more activation rounds and thus more latency.
        let pts = fig4(true);
        let mut uniform: Vec<&Fig4Point> =
            pts.iter().filter(|p| p.method == Method::Uniform).collect();
        uniform.sort_by(|a, b| a.xbar_compression.partial_cmp(&b.xbar_compression).unwrap());
        for w in uniform.windows(2) {
            if w[1].xbar_compression > w[0].xbar_compression * 1.05 {
                assert!(
                    w[1].latency_ms >= w[0].latency_ms * 0.8,
                    "latency should broadly rise with compression: {:?} vs {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }
}
