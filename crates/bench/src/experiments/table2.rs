//! Table 2: detailed quantization ablation — naive quantization vs
//! per-crossbar scaling factors vs overlap-weighted ranges.
//!
//! Two complementary reproductions:
//! 1. **Accuracy** rows via the calibrated surrogate (the paper's actual
//!    Table 2 values).
//! 2. **Measured weight-space** ablation on real epitomes: quantization
//!    error (plain and repetition-weighted) of the three methods at 3
//!    bits, demonstrating the mechanism with no surrogate involved.

use epim::core::Epitome;
use epim::models::accuracy::{AccuracyModel, QuantMethod, WeightScheme};
use epim::models::network::OperatorChoice;
use epim::models::resnet::{resnet101, resnet50};
use epim::quant::{quantize_epitome, QuantGranularity, RangeEstimator};
use epim::tensor::{init, rng};

use super::uniform_epim;

/// One accuracy row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Model + bits label, e.g. `"ResNet-50 (3-bit)"`.
    pub model: String,
    /// Naive quantization accuracy (%).
    pub naive: f64,
    /// + per-crossbar scaling factors (%).
    pub adjust_crossbars: f64,
    /// + overlap-weighted ranges (%).
    pub adjust_overlap: f64,
}

/// The surrogate-rendered accuracy table (both models, 3-bit and mixed
/// 3–5-bit).
pub fn table2_accuracy() -> Vec<Table2Row> {
    let mut rows = Vec::new();
    for (name, acc, cr) in [
        (
            "ResNet-50",
            AccuracyModel::resnet50(),
            uniform_epim(resnet50()).param_compression(),
        ),
        (
            "ResNet-101",
            AccuracyModel::resnet101(),
            uniform_epim(resnet101()).param_compression(),
        ),
    ] {
        for (bits_label, scheme) in [
            ("3-bit", WeightScheme::Fixed { bits: 3 }),
            ("3-5 bit", WeightScheme::Mixed { avg_bits: 3.5 }),
        ] {
            rows.push(Table2Row {
                model: format!("{name} ({bits_label})"),
                naive: acc.epim_accuracy(cr, scheme, QuantMethod::Naive),
                adjust_crossbars: acc.epim_accuracy(cr, scheme, QuantMethod::PerCrossbar),
                adjust_overlap: acc.epim_accuracy(cr, scheme, QuantMethod::PerCrossbarOverlap),
            });
        }
    }
    rows
}

/// One measured row: weight-space error of the three methods on a real
/// epitome at 3 bits.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Measured {
    /// Layer name.
    pub layer: String,
    /// MSE of naive per-tensor quantization.
    pub naive_mse: f64,
    /// MSE with per-crossbar scaling factors.
    pub xbar_mse: f64,
    /// Repetition-weighted MSE with min/max ranges (per crossbar).
    pub xbar_weighted_mse: f64,
    /// Repetition-weighted MSE with overlap ranges (per crossbar).
    pub overlap_weighted_mse: f64,
}

fn weighted_mse(original: &Epitome, quantized: &Epitome) -> f64 {
    let reps = original.repetition_map();
    let diff = quantized
        .tensor()
        .sub(original.tensor())
        .expect("same shape");
    let num: f64 = diff
        .data()
        .iter()
        .zip(reps.data())
        .map(|(&d, &c)| (d as f64 * d as f64) * c as f64)
        .sum();
    num / reps.sum() as f64
}

/// Measures the ablation on the first `max_layers` epitome layers of the
/// uniform ResNet-50 EPIM variant, with Kaiming-initialized weights.
pub fn table2_measured(max_layers: usize) -> Vec<Table2Measured> {
    let net = uniform_epim(resnet50());
    let mut rows = Vec::new();
    let mut r = rng::seeded(2024);
    for (layer, choice) in net.backbone().layers.iter().zip(net.choices()) {
        if rows.len() >= max_layers {
            break;
        }
        let OperatorChoice::Epitome(spec) = choice else {
            continue;
        };
        let data = init::kaiming_normal(&spec.shape().dims(), &mut r);
        let epi = Epitome::from_tensor(spec.clone(), data).expect("shape matches");
        let xbar_tiles = QuantGranularity::PerCrossbar {
            rows: 128,
            cols: 128,
        };
        let (q_naive, rep_naive) = quantize_epitome(
            &epi,
            3,
            QuantGranularity::PerTensor,
            &RangeEstimator::MinMax,
        )
        .expect("quantization succeeds");
        let (q_xbar, rep_xbar) = quantize_epitome(&epi, 3, xbar_tiles, &RangeEstimator::MinMax)
            .expect("quantization succeeds");
        let (q_overlap, _) =
            quantize_epitome(&epi, 3, xbar_tiles, &RangeEstimator::overlap_default())
                .expect("quantization succeeds");
        let _ = q_naive;
        rows.push(Table2Measured {
            layer: layer.name.clone(),
            naive_mse: rep_naive.mse,
            xbar_mse: rep_xbar.mse,
            xbar_weighted_mse: weighted_mse(&epi, &q_xbar),
            overlap_weighted_mse: weighted_mse(&epi, &q_overlap),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_rows_hit_published_anchors() {
        let rows = table2_accuracy();
        assert_eq!(rows.len(), 4);
        let r50_3 = &rows[0];
        assert!((r50_3.naive - 69.95).abs() < 0.35, "{}", r50_3.naive);
        assert!((r50_3.adjust_crossbars - 71.35).abs() < 0.35);
        assert!((r50_3.adjust_overlap - 71.59).abs() < 0.35);
        let r101_3 = &rows[2];
        assert!((r101_3.naive - 73.98).abs() < 0.35);
        assert!((r101_3.adjust_overlap - 74.98).abs() < 0.35);
    }

    #[test]
    fn every_row_shows_the_tables_ordering() {
        for row in table2_accuracy() {
            assert!(row.naive < row.adjust_crossbars, "{row:?}");
            assert!(row.adjust_crossbars < row.adjust_overlap, "{row:?}");
        }
    }

    #[test]
    fn measured_ablation_shows_mechanism() {
        let rows = table2_measured(4);
        assert!(!rows.is_empty());
        for r in &rows {
            // Per-crossbar scales do not meaningfully increase plain MSE
            // (equality happens when a layer's tiles share one range).
            assert!(r.xbar_mse <= r.naive_mse * 1.05, "{r:?}");
            // Overlap weighting targets repetition-weighted error; allow
            // small slack for layers with mild overlap.
            assert!(
                r.overlap_weighted_mse <= r.xbar_weighted_mse * 1.10,
                "{r:?}"
            );
            assert!(r.naive_mse.is_finite() && r.naive_mse > 0.0);
        }
    }
}
