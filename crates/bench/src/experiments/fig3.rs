//! Figure 3: per-layer parameter size, latency and energy for three
//! ResNet-50 layers, with and without the epitome.
//!
//! The paper indexes "Layer 9, 41, 67" (its own layer numbering, which
//! counts more entries than our 54 weight layers). We map them to the
//! same depth positions the figure discusses: an early stage-1 layer
//! whose epitome barely saves parameters but costs full extra rounds, a
//! middle stage-3 layer, and a late stage-4 layer where the epitome
//! removes ~1M parameters at modest extra latency/energy — reproducing
//! the figure's contrast (see EXPERIMENTS.md for the exact mapping).

use epim::models::resnet::{resnet50, LayerInfo};
use epim::pim::Precision;

use super::{cost_model, designer};

/// One bar group of Figure 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Entry {
    /// The paper's layer label ("L9", "L41", "L67").
    pub label: String,
    /// Our inventory layer name.
    pub layer_name: String,
    /// Baseline conv parameters, thousands.
    pub conv_params_k: f64,
    /// Epitome parameters, thousands.
    pub epitome_params_k: f64,
    /// Baseline latency, ms.
    pub conv_latency_ms: f64,
    /// Epitome latency, ms.
    pub epitome_latency_ms: f64,
    /// Baseline energy, 0.1 mJ units (the figure's axis).
    pub conv_energy_01mj: f64,
    /// Epitome energy, 0.1 mJ units.
    pub epitome_energy_01mj: f64,
}

fn entry(label: &str, layer: &LayerInfo) -> Fig3Entry {
    let model = cost_model(false); // the figure predates the optimizations
    let prec = Precision::fp32();
    let conv = layer.conv;
    let spec = designer().design(conv, 1024, 256).expect("legal design");
    let c = model.conv_layer(conv, layer.out_pixels(), prec);
    let e = model.epitome_layer(&spec, layer.out_pixels(), prec);
    Fig3Entry {
        label: label.to_string(),
        layer_name: layer.name.clone(),
        conv_params_k: conv.params() as f64 / 1e3,
        epitome_params_k: spec.shape().params() as f64 / 1e3,
        conv_latency_ms: c.latency_ms(),
        epitome_latency_ms: e.latency_ms(),
        conv_energy_01mj: c.energy_mj() * 10.0,
        epitome_energy_01mj: e.energy_mj() * 10.0,
    }
}

/// Generates the three Figure 3 bar groups.
pub fn fig3() -> Vec<Fig3Entry> {
    let net = resnet50();
    // Depth-mapped selections (paper labels -> our inventory):
    //   L9  -> an early stage-1 3x3 conv (few params, big feature map),
    //   L41 -> a middle stage-3 3x3 conv,
    //   L67 -> a late stage-4 3x3 conv (many params, small feature map).
    let picks = [
        ("L9", "stage1.block2.conv2"),
        ("L41", "stage3.block2.conv2"),
        ("L67", "stage4.block2.conv2"),
    ];
    picks
        .iter()
        .map(|(label, name)| {
            let layer = net.layer(name).expect("layer exists in inventory");
            entry(label, layer)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_groups_produced() {
        let f = fig3();
        assert_eq!(f.len(), 3);
        assert_eq!(f[0].label, "L9");
        assert_eq!(f[2].label, "L67");
    }

    #[test]
    fn late_layer_saves_more_parameters_than_early() {
        // The figure's core contrast: L67's epitome removes far more
        // parameters (paper: 983.6k) than L9's (paper: 20.5k).
        let f = fig3();
        let saved = |e: &Fig3Entry| e.conv_params_k - e.epitome_params_k;
        assert!(
            saved(&f[2]) > 20.0 * saved(&f[0]),
            "L67 saves {:.1}k, L9 saves {:.1}k",
            saved(&f[2]),
            saved(&f[0])
        );
        // L67 saves on the order of 1M parameters.
        assert!(saved(&f[2]) > 800.0, "L67 saves {:.1}k", saved(&f[2]));
    }

    #[test]
    fn epitome_adds_latency_and_energy_everywhere() {
        // Without wrapping/search, the epitome costs extra time and
        // energy on every layer (the §5.1 motivation).
        for e in fig3() {
            assert!(e.epitome_latency_ms >= e.conv_latency_ms, "{e:?}");
            assert!(e.epitome_energy_01mj >= e.conv_energy_01mj, "{e:?}");
            assert!(e.epitome_params_k <= e.conv_params_k, "{e:?}");
        }
    }

    #[test]
    fn early_layer_overhead_is_poor_value() {
        // L9: little parameter saving for a comparable latency hit —
        // the reason layer-wise design exists.
        let f = fig3();
        let value = |e: &Fig3Entry| {
            (e.conv_params_k - e.epitome_params_k)
                / (e.epitome_latency_ms - e.conv_latency_ms).max(1e-9)
        };
        assert!(
            value(&f[2]) > value(&f[0]),
            "late layers must give more params saved per ms of overhead"
        );
    }
}
