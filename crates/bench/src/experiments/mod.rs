//! Experiment implementations, one module per table/figure.

pub mod ablation;
pub mod fig3;
pub mod fig4;
pub mod table1;
pub mod table2;
pub mod table3;

use epim::core::EpitomeDesigner;
use epim::models::network::Network;
use epim::models::resnet::Backbone;
use epim::pim::{AcceleratorConfig, CostModel, Precision};
use epim::search::{EvoSearch, Objective, SearchConfig, SearchLayer};

/// The paper's crossbar geometry: 128×128 with 2-bit cells.
pub fn designer() -> EpitomeDesigner {
    EpitomeDesigner::new(128, 128)
}

/// The calibrated cost model, with or without channel wrapping.
pub fn cost_model(wrapping: bool) -> CostModel {
    CostModel::new(AcceleratorConfig::default().with_channel_wrapping(wrapping))
}

/// The paper's uniform EPIM variant (1024×256 epitomes everywhere
/// applicable).
pub fn uniform_epim(backbone: Backbone) -> Network {
    Network::uniform_epitome(backbone, &designer(), 1024, 256)
        .expect("uniform design is legal for both backbones")
}

/// Crossbars used by the epitome layers of a network (the budget base for
/// "similar compression" comparisons in Figure 4).
pub fn epitome_layer_crossbars(net: &Network, prec: Precision) -> usize {
    let costs = net.simulate(&cost_model(false), prec);
    costs
        .layers()
        .iter()
        .zip(net.choices())
        .filter(|(_, c)| c.is_epitome())
        .map(|((_, lc), _)| lc.crossbars)
        .sum()
}

/// Builds the layer-wise search problem over every layer the uniform
/// design compresses.
pub fn search_problem(backbone: &Backbone) -> Vec<(usize, SearchLayer)> {
    let d = designer();
    let uniform = uniform_epim(backbone.clone());
    backbone
        .layers
        .iter()
        .enumerate()
        .zip(uniform.choices())
        .filter(|(_, c)| c.is_epitome())
        .map(|((i, l), _)| {
            (
                i,
                SearchLayer {
                    conv: l.conv,
                    out_pixels: l.out_pixels(),
                    candidates: d.candidates(l.conv).expect("candidates for valid conv"),
                },
            )
        })
        .collect()
}

/// Derives the genome closest to a reference network's epitome choices:
/// for each searched layer, the candidate whose mapped matrix is nearest
/// (in rows, then cout) to the reference spec. Used to seed the search so
/// the result can only improve on the reference design.
pub fn genome_for_reference(problem: &[(usize, SearchLayer)], reference: &Network) -> Vec<usize> {
    problem
        .iter()
        .map(|(layer_idx, sl)| {
            let target = match &reference.choices()[*layer_idx] {
                epim::models::network::OperatorChoice::Epitome(s) => {
                    (s.shape().matrix_rows() as isize, s.shape().cout as isize)
                }
                epim::models::network::OperatorChoice::Conv => {
                    (sl.conv.matrix_rows() as isize, sl.conv.cout as isize)
                }
            };
            sl.candidates
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| {
                    let dr = c.shape().matrix_rows() as isize - target.0;
                    let dc = c.shape().cout as isize - target.1;
                    dr * dr + dc * dc
                })
                .map(|(i, _)| i)
                .expect("candidate sets are nonempty")
        })
        .collect()
}

/// Runs the layer-wise evolutionary search (paper §5.2) and returns the
/// resulting network (searched epitomes on eligible layers, convolutions
/// elsewhere).
///
/// `budget` bounds the searched layers' crossbars (Eq. 7); `reference`
/// (typically the uniform design being improved upon) seeds the initial
/// population; `fast` shrinks the population/iterations for unit tests.
pub fn searched_network(
    backbone: &Backbone,
    objective: Objective,
    precision: Precision,
    wrapping: bool,
    budget: usize,
    reference: Option<&Network>,
    fast: bool,
) -> Network {
    let problem = search_problem(backbone);
    let layers: Vec<SearchLayer> = problem.iter().map(|(_, l)| l.clone()).collect();
    let mut cfg = SearchConfig {
        population: if fast { 12 } else { 32 },
        iterations: if fast { 8 } else { 40 },
        objective,
        crossbar_budget: budget,
        seed: 2024,
        ..SearchConfig::default()
    };
    // The reference network's shapes may not be exactly representable in
    // the candidate ladder; widen the budget just enough that the nearest
    // representable genome stays feasible, so the search provably starts
    // from (at least) the reference design.
    let reference_genome = reference.map(|r| genome_for_reference(&problem, r));
    if let Some(g) = &reference_genome {
        let probe = EvoSearch::new(
            layers.clone(),
            cost_model(wrapping),
            precision,
            SearchConfig {
                crossbar_budget: usize::MAX,
                ..cfg
            },
        )
        .expect("valid search problem");
        let (seed_costs, _) = probe.evaluate(g);
        cfg.crossbar_budget = cfg.crossbar_budget.max(seed_costs.crossbars);
    }
    let search = EvoSearch::new(layers.clone(), cost_model(wrapping), precision, cfg)
        .expect("valid search problem");
    // Seed the population with interpretable heuristics: all-identity
    // (fast, crossbar-hungry), all-most-compressed (slow, frugal), and a
    // pixel-aware ramp (big epitomes where output pixels — and therefore
    // activation rounds — are many). Elitism guarantees the search result
    // is at least as good as the best feasible seed.
    let identity: Vec<usize> = vec![0; layers.len()];
    let most: Vec<usize> = layers.iter().map(|l| l.candidates.len() - 1).collect();
    let ramp: Vec<usize> = layers
        .iter()
        .map(|l| {
            if l.out_pixels >= 28 * 28 {
                0
            } else if l.out_pixels >= 14 * 14 {
                l.candidates.len() / 2
            } else {
                l.candidates.len() - 1
            }
        })
        .collect();
    let mut seeds = vec![identity, ramp, most];
    if let Some(g) = reference_genome {
        seeds.insert(0, g);
    }
    let (best, _) = search.run_seeded(&seeds);

    let mut net = Network::baseline(backbone.clone());
    for ((layer_idx, sl), &gene) in problem.iter().zip(&best.genome) {
        let spec = sl.candidates[gene].clone();
        net.set_choice(
            *layer_idx,
            epim::models::network::OperatorChoice::Epitome(spec),
        )
        .expect("index within backbone");
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use epim::models::resnet::resnet50;

    #[test]
    fn search_problem_covers_epitome_layers() {
        let bb = resnet50();
        let problem = search_problem(&bb);
        let uniform = uniform_epim(bb);
        assert_eq!(problem.len(), uniform.epitome_layers());
        assert!(problem.len() > 20);
    }

    #[test]
    fn searched_network_respects_budget() {
        let bb = resnet50();
        let p = Precision::new(9, 9);
        let uniform_costs = uniform_epim(bb.clone()).simulate(&cost_model(true), p);
        // Budget: the uniform design's crossbars (searched layers are a
        // subset, so this is generous but binding in the right direction).
        let net = searched_network(
            &bb,
            Objective::Latency,
            p,
            true,
            uniform_costs.crossbars(),
            None,
            true,
        );
        let costs = net.simulate(&cost_model(true), p);
        assert!(costs.crossbars() > 0);
        assert!(net.epitome_layers() > 20);
    }
}
