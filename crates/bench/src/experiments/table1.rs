//! Table 1: main experimental results of EPIM on ImageNet.
//!
//! Columns reproduced: accuracy (calibrated surrogate — see DESIGN.md §2),
//! #XBs, crossbar compression rate, latency, energy, memristor utilization
//! (all simulated by the `epim-pim` cost model).

use epim::models::accuracy::{AccuracyModel, QuantMethod, WeightScheme};
use epim::models::network::Network;
use epim::models::resnet::{resnet101, resnet50, Backbone};
use epim::pim::Precision;
use epim::search::Objective;

use super::{cost_model, uniform_epim};

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Row label, e.g. `"EPIM-ResNet50-Latency-Opt"`.
    pub model: String,
    /// Bit-width label, e.g. `"W9A9"`.
    pub bitwidth: String,
    /// Epitome column, e.g. `"1024x256"`, `"layer-wise"` or `"-"`.
    pub epitome: String,
    /// Top-1 accuracy (%), from the calibrated surrogate.
    pub accuracy: f64,
    /// Crossbars allocated (NaN-free; 0 only for rows the paper leaves
    /// blank).
    pub xbs: usize,
    /// Crossbar compression rate vs the FP32 baseline.
    pub cr_xbs: f64,
    /// Network latency, ms.
    pub latency_ms: f64,
    /// Network energy, mJ.
    pub energy_mj: f64,
    /// Memristor utilization, %.
    pub utilization_pct: f64,
}

fn accuracy_model(backbone: &Backbone) -> AccuracyModel {
    if backbone.name == "ResNet50" {
        AccuracyModel::resnet50()
    } else {
        AccuracyModel::resnet101()
    }
}

/// The paper's `W3mp` assignment: 3/5-bit mixed precision allocated by
/// the HAWQ-style sensitivity proxy on the network's actual operators
/// (conv layers and small epitomes count via their parameter sizes; the
/// proxy itself is evaluated on Kaiming-initialized epitome tensors).
fn w3mp_allocation(net: &Network) -> epim::quant::BitAllocation {
    use epim::models::network::OperatorChoice;
    let mut r = epim::tensor::rng::seeded(17);
    let mut sens = Vec::new();
    let mut params = Vec::new();
    for (layer, choice) in net.backbone().layers.iter().zip(net.choices()) {
        match choice {
            OperatorChoice::Epitome(spec) => {
                let data = epim::tensor::init::kaiming_normal(&spec.shape().dims(), &mut r);
                let e = epim::core::Epitome::from_tensor(spec.clone(), data)
                    .expect("shape matches spec");
                sens.push(epim::quant::sensitivity_proxy(&e, 3).expect("proxy computes"));
                params.push(spec.shape().params());
            }
            OperatorChoice::Conv => {
                // Convolution layers keep weights verbatim; sensitivity is
                // proportional to their parameter mass at equal variance.
                sens.push(layer.conv.params() as f64);
                params.push(layer.conv.params());
            }
        }
    }
    epim::quant::MixedPrecision::w3mp()
        .allocate(&sens, &params)
        .expect("valid allocation inputs")
}

/// Generates all Table 1 rows for one backbone. `fast` shrinks the
/// evolutionary search for unit tests; the published harness uses
/// `fast = false`.
pub fn rows_for(backbone: Backbone, fast: bool) -> Vec<Table1Row> {
    let acc = accuracy_model(&backbone);
    let model = cost_model(true);
    let short = backbone.name.clone();
    let mut rows = Vec::new();

    // FP32 conv baseline.
    let baseline = Network::baseline(backbone.clone());
    let base_costs = baseline.simulate(&model, Precision::fp32());
    let base_xbs = base_costs.crossbars();
    rows.push(Table1Row {
        model: short.clone(),
        bitwidth: "FP32".into(),
        epitome: "-".into(),
        accuracy: acc.baseline(),
        xbs: base_xbs,
        cr_xbs: 1.0,
        latency_ms: base_costs.latency_ms(),
        energy_mj: base_costs.energy_mj(),
        utilization_pct: base_costs.utilization_pct(),
    });

    // Uniform EPIM at the precision ladder.
    let epim = uniform_epim(backbone.clone());
    let cr_params = epim.param_compression();
    let mp_alloc = w3mp_allocation(&epim);
    let ladder: &[(&str, Precision, WeightScheme)] = &[
        ("FP32", Precision::fp32(), WeightScheme::Fp32),
        (
            "W9A9",
            Precision::new(9, 9),
            WeightScheme::Fixed { bits: 9 },
        ),
        (
            "W7A9",
            Precision::new(7, 9),
            WeightScheme::Fixed { bits: 7 },
        ),
        (
            "W5A9",
            Precision::new(5, 9),
            WeightScheme::Fixed { bits: 5 },
        ),
        (
            "W3mpA9",
            Precision::new(4, 9),
            WeightScheme::Mixed {
                avg_bits: mp_alloc.avg_bits,
            },
        ),
        (
            "W3A9",
            Precision::new(3, 9),
            WeightScheme::Fixed { bits: 3 },
        ),
    ];
    for (label, prec, scheme) in ladder {
        let costs = if *label == "W3mpA9" {
            // The mixed-precision row simulates the genuine per-layer 3/5
            // bit assignment (HAWQ-style allocation via the sensitivity
            // proxy), not a uniform 4-bit stand-in.
            let precs: Vec<Precision> = mp_alloc
                .bits
                .iter()
                .map(|&b| Precision::new(b, 9))
                .collect();
            epim.simulate_per_layer(&model, &precs)
        } else {
            epim.simulate(&model, *prec)
        };
        rows.push(Table1Row {
            model: format!("EPIM-{short}"),
            bitwidth: (*label).into(),
            epitome: "1024x256".into(),
            accuracy: acc.epim_accuracy(cr_params, *scheme, QuantMethod::PerCrossbarOverlap),
            xbs: costs.crossbars(),
            cr_xbs: base_xbs as f64 / costs.crossbars() as f64,
            latency_ms: costs.latency_ms(),
            energy_mj: costs.energy_mj(),
            utilization_pct: costs.utilization_pct(),
        });

        // Insert the layer-wise opt rows right after the W9A9 row
        // (mirroring the paper's row order, ResNet-50 only).
        if *label == "W9A9" && short == "ResNet50" {
            // Budget: the uniform design's crossbars on the searched
            // layers, so the opt rows offer at least the same compression
            // (paper: 1080/1048 XBs vs the uniform 1424).
            let budget = super::epitome_layer_crossbars(&epim, *prec);
            for (objective, tag) in [
                (Objective::Latency, "Latency-Opt"),
                (Objective::Energy, "Energy-Opt"),
            ] {
                let net = super::searched_network(
                    &backbone,
                    objective,
                    *prec,
                    true,
                    budget,
                    Some(&epim),
                    fast,
                );
                let c = net.simulate(&model, *prec);
                rows.push(Table1Row {
                    model: format!("EPIM-{short}-{tag}"),
                    bitwidth: (*label).into(),
                    epitome: "layer-wise".into(),
                    accuracy: acc.epim_accuracy(
                        net.param_compression(),
                        *scheme,
                        QuantMethod::PerCrossbarOverlap,
                    ),
                    xbs: c.crossbars(),
                    cr_xbs: base_xbs as f64 / c.crossbars() as f64,
                    latency_ms: c.latency_ms(),
                    energy_mj: c.energy_mj(),
                    utilization_pct: c.utilization_pct(),
                });
            }
        }
    }

    // PIM-Prune reference row (the paper reports accuracy and CR only).
    rows.insert(
        2,
        Table1Row {
            model: format!("PIM-Prune-{short}"),
            bitwidth: "FP32".into(),
            epitome: "-".into(),
            accuracy: acc.pim_prune_accuracy(0.50),
            xbs: 0,
            cr_xbs: f64::NAN,
            latency_ms: f64::NAN,
            energy_mj: f64::NAN,
            utilization_pct: f64::NAN,
        },
    );
    rows
}

/// The full Table 1 (both backbones).
pub fn table1(fast: bool) -> Vec<Table1Row> {
    let mut rows = rows_for(resnet50(), fast);
    rows.extend(rows_for(resnet101(), fast));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(rows: &'a [Table1Row], model: &str, bits: &str) -> &'a Table1Row {
        rows.iter()
            .find(|r| r.model == model && r.bitwidth == bits)
            .unwrap_or_else(|| panic!("row {model}/{bits} missing"))
    }

    #[test]
    fn resnet50_rows_match_paper_shape() {
        let rows = rows_for(resnet50(), true);
        let base = find(&rows, "ResNet50", "FP32");
        let fp = find(&rows, "EPIM-ResNet50", "FP32");
        let w9 = find(&rows, "EPIM-ResNet50", "W9A9");
        let w3 = find(&rows, "EPIM-ResNet50", "W3A9");

        // Accuracy anchors (surrogate is calibrated on these).
        assert!((base.accuracy - 76.37).abs() < 0.01);
        assert!((fp.accuracy - 74.00).abs() < 0.30);
        assert!((w3.accuracy - 71.59).abs() < 0.30);

        // Crossbar compression ordering and regime.
        assert!(fp.cr_xbs > 1.5 && fp.cr_xbs < 3.5, "FP32 CR {}", fp.cr_xbs);
        assert!(w9.cr_xbs > fp.cr_xbs);
        assert!(w3.cr_xbs > 15.0, "W3 CR {}", w3.cr_xbs);

        // Energy collapses with quantization (paper: 23x).
        assert!(base.energy_mj / w3.energy_mj > 5.0);

        // Epitome slows FP32 inference down (paper: 139.8 -> 167.7 ms).
        assert!(fp.latency_ms > base.latency_ms);

        // Utilization stays high for aligned epitomes (paper: >93%).
        assert!(w9.utilization_pct > 85.0);
    }

    #[test]
    fn opt_rows_beat_uniform_w9() {
        let rows = rows_for(resnet50(), true);
        let w9 = find(&rows, "EPIM-ResNet50", "W9A9");
        let lat = find(&rows, "EPIM-ResNet50-Latency-Opt", "W9A9");
        let en = find(&rows, "EPIM-ResNet50-Energy-Opt", "W9A9");
        // Paper: 50.9 -> 49.2 ms and 17.0 -> 15.6 mJ. Direction must hold.
        assert!(
            lat.latency_ms <= w9.latency_ms * 1.001,
            "latency-opt {} vs uniform {}",
            lat.latency_ms,
            w9.latency_ms
        );
        assert!(
            en.energy_mj <= w9.energy_mj * 1.001,
            "energy-opt {} vs uniform {}",
            en.energy_mj,
            w9.energy_mj
        );
        // Both opt rows offer similar compression (the budget is widened
        // only by the candidate-ladder representability gap).
        assert!(
            lat.xbs as f64 <= w9.xbs as f64 * 1.10,
            "{} vs {}",
            lat.xbs,
            w9.xbs
        );
        assert!(
            en.xbs as f64 <= w9.xbs as f64 * 1.10,
            "{} vs {}",
            en.xbs,
            w9.xbs
        );
    }

    #[test]
    fn resnet101_rows_present_and_consistent() {
        let rows = rows_for(resnet101(), true);
        let base = find(&rows, "ResNet101", "FP32");
        let w3 = find(&rows, "EPIM-ResNet101", "W3A9");
        assert!((base.accuracy - 78.77).abs() < 0.01);
        assert!((w3.accuracy - 74.98).abs() < 0.30);
        assert!(w3.cr_xbs > 15.0);
        // ResNet-101 larger than ResNet-50 (paper: 22912 vs 13120 XBs).
        let rows50 = rows_for(resnet50(), true);
        let base50 = find(&rows50, "ResNet50", "FP32");
        assert!(base.xbs > base50.xbs);
    }

    #[test]
    fn precision_ladder_monotone() {
        let rows = rows_for(resnet50(), true);
        let ladder = ["W9A9", "W7A9", "W5A9", "W3A9"];
        let mut prev_xbs = usize::MAX;
        let mut prev_acc = f64::INFINITY;
        for bits in ladder {
            let r = find(&rows, "EPIM-ResNet50", bits);
            assert!(r.xbs <= prev_xbs, "{bits}");
            assert!(r.accuracy <= prev_acc, "{bits}");
            prev_xbs = r.xbs;
            prev_acc = r.accuracy;
        }
    }
}
