//! # epim-bench
//!
//! The benchmark harness regenerating every table and figure of the EPIM
//! paper's evaluation (§6–7). Experiment logic lives here so it is unit
//! tested; the `src/bin/*` targets print the tables:
//!
//! | target | reproduces |
//! |---|---|
//! | `table1` | Table 1 — main results (ResNet-50/101 × precision ladder) |
//! | `table2` | Table 2 — quantization ablation |
//! | `table3` | Table 3 — epitome vs pruning |
//! | `fig3` | Figure 3 — per-layer params/latency/energy |
//! | `fig4` | Figure 4 — uniform vs wrapping vs evo-search vs EPIM-Opt |
//! | `accuracy_smallscale` | the ImageNet substitution experiment |
//! | `calibrate` | prints raw-LUT baselines used to fit `HardwareLut::calibrated` |
//!
//! Run, e.g.: `cargo run -p epim-bench --release --bin table1`

pub mod experiments;
pub mod format;
