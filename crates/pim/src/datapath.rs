//! The EPIM data path, executed functionally (paper §4.3, Figure 2b).
//!
//! The epitome breaks a convolution into many small kernels; to run it on
//! crossbars the accelerator must know, for every activation round, which
//! buffered inputs drive which word lines and where the bit-line outputs
//! land in the output feature map. The paper adds three index tables:
//!
//! - **IFAT** (Input Feature Address Table): start/stop index pairs
//!   locating the input-feature elements needed by the current round. One
//!   entry per activation round.
//! - **IFRT** (Input Feature Row Table): for each crossbar word line,
//!   which gathered input element drives it this round (or none — those
//!   word lines are held at zero volts). One sequence per sampled patch,
//!   each as long as the crossbar row count.
//! - **OFAT** (Output Feature Address Table): start/stop pairs locating
//!   each round's partial result in the output feature vector. The joint
//!   module adds partials with identical ranges and concatenates
//!   sequential ones.
//!
//! [`DataPath::execute`] runs a whole layer through this machinery and is
//! the ground truth for the functional-equivalence tests: its output must
//! match a plain convolution with [`epim_core::Epitome::reconstruct`]'s
//! weight exactly.

use crate::quantize::{quantize_slice, quantize_value};
use crate::PimError;
use epim_core::{wrapping_factor, ChannelWrapping, Epitome, EpitomeSpec};
use epim_obs::trace;
use epim_tensor::ops::{conv2d_out_dims, Conv2dCfg};
use epim_tensor::{rng, Tensor};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Analog non-idealities applied by the functional data path.
///
/// Models the two dominant error sources of real memristor crossbars:
/// **conductance programming noise** (each stored weight is perturbed once,
/// multiplicatively, when the epitome is written to the array) and
/// **finite ADC precision** (each bit-line partial sum is quantized to
/// `adc_bits` before the joint module).
///
/// # Example
///
/// ```
/// use epim_pim::datapath::AnalogModel;
///
/// let ideal = AnalogModel::ideal();
/// assert!(!ideal.is_noisy());
/// let noisy = AnalogModel { weight_noise_std: 0.02, adc_bits: Some(8), ..AnalogModel::ideal() };
/// assert!(noisy.is_noisy());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalogModel {
    /// Relative (multiplicative) Gaussian std of programmed conductances.
    /// `0.0` disables programming noise.
    pub weight_noise_std: f32,
    /// ADC resolution in bits; `None` models an ideal readout.
    pub adc_bits: Option<u8>,
    /// DAC (input word-line driver) resolution in bits; `None` models an
    /// ideal driver. This is the activation precision of the paper's
    /// `A9` columns, applied functionally.
    pub dac_bits: Option<u8>,
    /// Full-scale input magnitude the DAC can drive; inputs beyond it
    /// clip.
    pub input_full_scale: f32,
    /// Seed for the programming-noise draw (deterministic per data path).
    pub noise_seed: u64,
}

impl AnalogModel {
    /// The ideal (noise-free, infinite-precision) model.
    pub fn ideal() -> Self {
        AnalogModel {
            weight_noise_std: 0.0,
            adc_bits: None,
            dac_bits: None,
            input_full_scale: 1.0,
            noise_seed: 0,
        }
    }

    /// Whether any non-ideality is active.
    pub fn is_noisy(&self) -> bool {
        self.weight_noise_std > 0.0 || self.adc_bits.is_some() || self.dac_bits.is_some()
    }
}

impl Default for AnalogModel {
    fn default() -> Self {
        AnalogModel::ideal()
    }
}

/// A half-open index range `[start, stop)` as stored in IFAT/OFAT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IndexRange {
    /// Inclusive start.
    pub start: usize,
    /// Exclusive stop.
    pub stop: usize,
}

impl IndexRange {
    /// Range length.
    pub fn len(&self) -> usize {
        self.stop - self.start
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.stop == self.start
    }
}

/// Input Feature Address Table: per activation round, the ranges of the
/// (flattened `c_in × kh × kw`) receptive-field vector that must be fetched
/// from the buffer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ifat {
    /// One entry (a list of contiguous ranges) per activation round.
    pub entries: Vec<Vec<IndexRange>>,
}

impl Ifat {
    /// Total index pairs stored (hardware table size).
    pub fn index_pairs(&self) -> usize {
        self.entries.iter().map(Vec::len).sum()
    }
}

/// Input Feature Row Table: per activation round, for every crossbar word
/// line either the gathered-input position that drives it or `None`
/// (word line grounded — its weights are not part of this round).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ifrt {
    /// `sequences[round][word_line] -> Option<input position>`.
    pub sequences: Vec<Vec<Option<usize>>>,
    /// Word lines per crossbar (sequence length).
    pub word_lines: usize,
}

/// Output Feature Address Table entry: where a round's partial result lands
/// in the output-channel vector, and whether the joint module accumulates
/// (same range seen before) or concatenates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OfatEntry {
    /// Destination range in the output-channel vector.
    pub range: IndexRange,
    /// Offset of the source bit lines within the epitome's column space.
    pub src_col_start: usize,
}

/// Output Feature Address Table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ofat {
    /// One entry per activation round.
    pub entries: Vec<OfatEntry>,
}

/// Statistics accumulated by a functional execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataPathStats {
    /// Crossbar activation rounds executed.
    pub rounds: u64,
    /// Word lines driven (non-grounded) across all rounds.
    pub word_line_activations: u64,
    /// Bit lines sensed across all rounds.
    pub bit_line_activations: u64,
    /// Output-buffer element writes (partial results).
    pub buffer_writes: u64,
    /// Input-buffer element reads.
    pub buffer_reads: u64,
    /// Joint-module additions.
    pub joint_adds: u64,
    /// Index-table lookups (IFAT + IFRT + OFAT).
    pub table_lookups: u64,
    /// Output elements produced by wrapping replication instead of compute.
    pub wrapped_elements: u64,
}

impl DataPathStats {
    /// Adds another stats block into this one (used to merge the per-chunk
    /// counters of a parallel execution; all fields are plain sums).
    pub fn accumulate(&mut self, other: &DataPathStats) {
        self.rounds += other.rounds;
        self.word_line_activations += other.word_line_activations;
        self.bit_line_activations += other.bit_line_activations;
        self.buffer_writes += other.buffer_writes;
        self.buffer_reads += other.buffer_reads;
        self.joint_adds += other.joint_adds;
        self.table_lookups += other.table_lookups;
        self.wrapped_elements += other.wrapped_elements;
    }
}

/// One activation round, precompiled for execution: the IFAT gather, IFRT
/// placement and OFAT routing composed into a flat word-line list.
///
/// `active[k] = (word_line, receptive_index)`: driving `word_line` with the
/// `receptive_index`-th element of the flattened receptive field reproduces
/// exactly the seed's gather-then-place pipeline, without materializing the
/// intermediate gather buffer each round.
#[derive(Debug, Clone)]
struct Round {
    active: Vec<(usize, usize)>,
    /// Number of IFAT index pairs this round consumes (stats bookkeeping).
    ifat_pairs: u64,
    range: IndexRange,
    src_col_start: usize,
}

/// The index tables and per-round word-line lists for one epitome spec,
/// compiled once and shared.
///
/// Everything here derives from the sampling plan alone — it depends on
/// neither the epitome's tensor values nor the analog model — so a serving
/// runtime can compile a spec's plan once and share it (behind an [`Arc`])
/// across every [`DataPath`] programmed for that spec. This is the artifact
/// `epim-runtime`'s plan cache memoizes; `DataPath::new` used to recompile
/// it on every construction.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    spec: EpitomeSpec,
    ifat: Ifat,
    ifrt: Ifrt,
    ofat: Ofat,
    /// Per-round execution plan compiled from the three tables.
    rounds: Vec<Round>,
}

impl CompiledPlan {
    /// Compiles the IFAT/IFRT/OFAT tables and the fused per-round word-line
    /// lists for `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`PimError`] if the spec's sampling plan fails verification.
    pub fn compile(spec: &EpitomeSpec) -> Result<Self, PimError> {
        spec.plan().verify()?;
        let conv = spec.conv();
        let eshape = spec.shape();
        let rows_e = eshape.matrix_rows();

        let mut ifat_entries = Vec::new();
        let mut ifrt_sequences = Vec::new();
        let mut ofat_entries = Vec::new();
        let mut rounds = Vec::new();

        for patch in spec.plan().patches() {
            // IFAT: contiguous ranges of the flattened receptive field
            // (c_in, ky, kx) that this patch consumes. A run over kx of
            // length patch.size[3] is contiguous.
            let mut ranges = Vec::new();
            for ci in 0..patch.size[1] {
                for ky in 0..patch.size[2] {
                    let base = ((patch.dst[1] + ci) * conv.kh + (patch.dst[2] + ky)) * conv.kw
                        + patch.dst[3];
                    ranges.push(IndexRange {
                        start: base,
                        stop: base + patch.size[3],
                    });
                }
            }
            ifat_entries.push(ranges);

            // IFRT: word line -> position within the gathered inputs.
            // Word line index of epitome element (ci_e, y_e, x_e):
            //   (ci_e * h + y_e) * w + x_e.
            let mut seq = vec![None; rows_e];
            let mut active = Vec::with_capacity(patch.size[1] * patch.size[2] * patch.size[3]);
            let mut gathered = 0usize;
            for ci in 0..patch.size[1] {
                for ky in 0..patch.size[2] {
                    for kx in 0..patch.size[3] {
                        let wl = ((patch.src[1] + ci) * eshape.h + (patch.src[2] + ky)) * eshape.w
                            + (patch.src[3] + kx);
                        seq[wl] = Some(gathered);
                        gathered += 1;
                        // Composed IFAT ∘ IFRT: the gathered position maps
                        // straight back to a receptive-field index.
                        let rf = ((patch.dst[1] + ci) * conv.kh + (patch.dst[2] + ky)) * conv.kw
                            + patch.dst[3]
                            + kx;
                        active.push((wl, rf));
                    }
                }
            }
            let ifat_pairs = ifat_entries
                .last()
                .map(|r: &Vec<IndexRange>| r.len())
                .unwrap_or(0);
            ifrt_sequences.push(seq);

            // OFAT: where the partial result lands among output channels.
            let range = IndexRange {
                start: patch.dst[0],
                stop: patch.dst[0] + patch.size[0],
            };
            ofat_entries.push(OfatEntry {
                range,
                src_col_start: patch.src[0],
            });
            rounds.push(Round {
                active,
                ifat_pairs: ifat_pairs as u64,
                range,
                src_col_start: patch.src[0],
            });
        }

        Ok(CompiledPlan {
            spec: spec.clone(),
            ifat: Ifat {
                entries: ifat_entries,
            },
            ifrt: Ifrt {
                sequences: ifrt_sequences,
                word_lines: rows_e,
            },
            ofat: Ofat {
                entries: ofat_entries,
            },
            rounds,
        })
    }

    /// The spec this plan was compiled for.
    pub fn spec(&self) -> &EpitomeSpec {
        &self.spec
    }

    /// The IFAT table.
    pub fn ifat(&self) -> &Ifat {
        &self.ifat
    }

    /// The IFRT table.
    pub fn ifrt(&self) -> &Ifrt {
        &self.ifrt
    }

    /// The OFAT table.
    pub fn ofat(&self) -> &Ofat {
        &self.ofat
    }

    /// Activation rounds per output pixel.
    pub fn rounds_per_pixel(&self) -> usize {
        self.rounds.len()
    }
}

/// Pixel rows per micro-kernel block in the batched data path.
const MVM_TB: usize = 8;

/// Register-blocked crossbar MVM for a block of `tb <= MVM_TB` pixels:
/// `out[ti][j] = sum_k a_blk[ti*kk + k] * panel[k*width + j]`, with the
/// `k` loop innermost and strictly in order.
///
/// **Bit-exactness contract:** every output element is produced by the
/// same sequence of (round-to-nearest multiply, add) as the scalar
/// per-pixel loop in [`DataPath::execute_pixel`] — the blocking only
/// reuses each panel row across `tb` pixels and keeps the accumulators in
/// registers (Rust never contracts `a + v * m` into an FMA, and
/// vectorization across the independent `ti`/`j` lanes does not reorder
/// any per-element sum). The j-dimension is tiled by 8 so a full tile's
/// `4 x 8` accumulator block stays in registers.
fn mvm_block(a_blk: &[f32], panel: &[f32], out: &mut [f32], tb: usize, kk: usize, width: usize) {
    let mut j0 = 0;
    while j0 < width {
        let jl = (width - j0).min(8);
        if tb == MVM_TB && jl == 8 {
            let mut acc = [[0.0f32; 8]; MVM_TB];
            for k in 0..kk {
                let b = &panel[k * width + j0..k * width + j0 + 8];
                for (ti, acc_row) in acc.iter_mut().enumerate() {
                    let v = a_blk[ti * kk + k];
                    for (a, &m) in acc_row.iter_mut().zip(b) {
                        *a += v * m;
                    }
                }
            }
            for (ti, acc_row) in acc.iter().enumerate() {
                out[ti * width + j0..ti * width + j0 + 8].copy_from_slice(acc_row);
            }
        } else {
            // Remainder block (short pixel block or narrow bit-line
            // chunk): plain loops, identical per-element order.
            for ti in 0..tb {
                let orow = &mut out[ti * width + j0..ti * width + j0 + jl];
                orow.fill(0.0);
                for k in 0..kk {
                    let v = a_blk[ti * kk + k];
                    let b = &panel[k * width + j0..k * width + j0 + jl];
                    for (a, &m) in orow.iter_mut().zip(b) {
                        *a += v * m;
                    }
                }
            }
        }
        j0 += jl;
    }
}

/// The functional EPIM data path for one layer.
#[derive(Debug, Clone)]
pub struct DataPath {
    /// Index tables + per-round word-line lists, shareable across data
    /// paths for the same spec.
    plan: Arc<CompiledPlan>,
    conv_cfg: Conv2dCfg,
    /// Epitome flattened to `(rows_e, cout_e)` matrix form, with
    /// programming noise already applied.
    matrix: Tensor,
    wrapping: ChannelWrapping,
    wrapping_enabled: bool,
    analog: AnalogModel,
    /// ADC full-scale per column: the largest partial sum this column can
    /// produce for unit-magnitude inputs (worst-case row L1 norm).
    adc_full_scale: f32,
}

impl DataPath {
    /// Builds the data path (index tables + crossbar matrix) for an
    /// epitome layer with ideal analog behavior.
    ///
    /// # Errors
    ///
    /// Returns [`PimError`] if the epitome's plan fails verification.
    pub fn new(
        epitome: &Epitome,
        conv_cfg: Conv2dCfg,
        wrapping_enabled: bool,
    ) -> Result<Self, PimError> {
        Self::with_analog(epitome, conv_cfg, wrapping_enabled, AnalogModel::ideal())
    }

    /// Builds the data path with an explicit analog non-ideality model,
    /// compiling the plan tables from scratch.
    ///
    /// # Errors
    ///
    /// Returns [`PimError`] if the epitome's plan fails verification or
    /// the noise parameters are invalid (negative std, zero ADC bits).
    pub fn with_analog(
        epitome: &Epitome,
        conv_cfg: Conv2dCfg,
        wrapping_enabled: bool,
        analog: AnalogModel,
    ) -> Result<Self, PimError> {
        let plan = Arc::new(CompiledPlan::compile(epitome.spec())?);
        Self::with_plan(plan, epitome, conv_cfg, wrapping_enabled, analog)
    }

    /// Builds the data path around an already-compiled plan (e.g. from
    /// `epim-runtime`'s plan cache), only programming the crossbar matrix.
    ///
    /// # Errors
    ///
    /// Returns [`PimError`] if the plan was compiled for a different spec
    /// than the epitome's, or the analog parameters are invalid.
    pub fn with_plan(
        plan: Arc<CompiledPlan>,
        epitome: &Epitome,
        conv_cfg: Conv2dCfg,
        wrapping_enabled: bool,
        analog: AnalogModel,
    ) -> Result<Self, PimError> {
        if !analog.weight_noise_std.is_finite() || analog.weight_noise_std < 0.0 {
            return Err(PimError::config("weight_noise_std must be finite and >= 0"));
        }
        if analog.adc_bits == Some(0) || analog.dac_bits == Some(0) {
            return Err(PimError::config("adc_bits/dac_bits must be nonzero"));
        }
        if !analog.input_full_scale.is_finite() || analog.input_full_scale <= 0.0 {
            return Err(PimError::config(
                "input_full_scale must be finite and positive",
            ));
        }
        if plan.spec() != epitome.spec() {
            return Err(PimError::config(
                "compiled plan belongs to a different epitome spec",
            ));
        }
        let spec = &plan.spec;
        let eshape = spec.shape();
        let rows_e = eshape.matrix_rows();

        // Flatten the epitome to matrix form (rows = cin_e*h*w, cols =
        // cout_e): row-major over (ci, y, x), applying multiplicative
        // programming noise as the cells are "written". Noise draws follow
        // the seed's (co, ci, y, x) write order so seeds stay comparable.
        let data = epitome.tensor().data();
        let mut noise_rng = rng::seeded(analog.noise_seed);
        let mut matrix = Tensor::zeros(&[rows_e, eshape.cout]);
        {
            let md = matrix.data_mut();
            let cout_e = eshape.cout;
            for (co_flat, &raw) in data.iter().enumerate() {
                // `data` is row-major (co, ci, y, x); the matrix row index
                // is the (ci, y, x) remainder.
                let co = co_flat / (eshape.cin * eshape.h * eshape.w);
                let row = co_flat % (eshape.cin * eshape.h * eshape.w);
                let mut v = raw;
                if analog.weight_noise_std > 0.0 {
                    v *= 1.0 + rng::normal(&mut noise_rng, 0.0, analog.weight_noise_std);
                }
                md[row * cout_e + co] = v;
            }
        }

        // ADC full scale: the worst-case column dot product for inputs in
        // [-1, 1] is the column's L1 norm.
        let mut col_l1 = vec![0.0f32; eshape.cout];
        for row in matrix.data().chunks(eshape.cout) {
            for (l1, &v) in col_l1.iter_mut().zip(row) {
                *l1 += v.abs();
            }
        }
        let adc_full_scale = col_l1
            .iter()
            .fold(0.0f32, |m, &x| m.max(x))
            .max(f32::MIN_POSITIVE);

        let wrapping = wrapping_factor(spec.plan());
        Ok(DataPath {
            plan,
            conv_cfg,
            matrix,
            wrapping,
            wrapping_enabled,
            analog,
            adc_full_scale,
        })
    }

    /// The analog non-ideality model in effect.
    pub fn analog(&self) -> AnalogModel {
        self.analog
    }

    /// The IFAT table.
    pub fn ifat(&self) -> &Ifat {
        &self.plan.ifat
    }

    /// The IFRT table.
    pub fn ifrt(&self) -> &Ifrt {
        &self.plan.ifrt
    }

    /// The OFAT table.
    pub fn ofat(&self) -> &Ofat {
        &self.plan.ofat
    }

    /// The layer's epitome spec.
    pub fn spec(&self) -> &EpitomeSpec {
        &self.plan.spec
    }

    /// The compiled plan this data path executes (shareable via
    /// [`DataPath::with_plan`]).
    pub fn compiled_plan(&self) -> &Arc<CompiledPlan> {
        &self.plan
    }

    /// The channel-wrapping analysis for this layer.
    pub fn wrapping(&self) -> ChannelWrapping {
        self.wrapping
    }

    /// Executes the layer on an input feature map `(N, C_in, H, W)`,
    /// returning the output `(N, C_out, OH, OW)` and execution statistics.
    ///
    /// This walks every output pixel through the activation rounds exactly
    /// as the hardware would: gather inputs via IFAT, place them on word
    /// lines via IFRT, run the (emulated, analog) crossbar MVM over the
    /// active lines, and route partial sums through OFAT + joint module.
    /// With wrapping enabled, rounds whose output-channel block is not the
    /// first are skipped and their outputs replicated (Eq. 9).
    ///
    /// # Errors
    ///
    /// Returns [`PimError::GeometryMismatch`] if the input does not match
    /// the layer's input-channel count or the convolution geometry is
    /// invalid for the input size.
    pub fn execute(&self, input: &Tensor) -> Result<(Tensor, DataPathStats), PimError> {
        let (n, h, w, oh, ow) = self.check_input(input)?;
        let conv = self.plan.spec.conv();
        let wrap_on = self.wrapping_enabled && self.wrapping.is_effective();
        let rf_len = conv.matrix_rows();
        let cfg = self.conv_cfg;
        let xd = input.data();

        // Pixel-major staging buffer: each row is one output pixel's
        // channel vector, so rows parallelize over disjoint chunks. Small
        // layers stay single-chunk (fully serial, no thread dispatch).
        let pixels = oh * ow;
        let rows = n * pixels;
        let mut pix = vec![0.0f32; rows * conv.cout];
        let chunk_rows = if rows * conv.cout < 1 << 14 {
            rows.max(1)
        } else {
            rows.div_ceil(4 * epim_parallel::num_threads()).max(1)
        };
        let stat_parts =
            epim_parallel::map_chunks_mut(&mut pix, chunk_rows * conv.cout, |chunk_idx, chunk| {
                let mut stats = DataPathStats::default();
                let mut receptive = vec![0.0f32; rf_len];
                let mut scratch = vec![0.0f32; self.plan.spec.shape().cout];
                for (r, out_vec) in chunk.chunks_mut(conv.cout).enumerate() {
                    let row = chunk_idx * chunk_rows + r;
                    let ox = row % ow;
                    let oy = (row / ow) % oh;
                    let ni = row / pixels;

                    // Fill the receptive-field buffer for this pixel (what
                    // the on-chip input buffer would hold).
                    epim_tensor::ops::fill_receptive_field(
                        xd,
                        conv.cin,
                        h,
                        w,
                        conv.kh,
                        conv.kw,
                        ni,
                        oy,
                        ox,
                        cfg,
                        &mut receptive,
                    );

                    self.execute_pixel(&receptive, out_vec, &mut scratch, wrap_on, &mut stats);
                }
                stats
            });
        let mut stats = DataPathStats::default();
        for part in &stat_parts {
            stats.accumulate(part);
        }

        // Scatter pixel-major -> NCHW; (image, channel) planes are disjoint.
        let mut out = Tensor::zeros(&[n, conv.cout, oh, ow]);
        let scatter_plane = |plane_idx: usize, plane: &mut [f32]| {
            let ni = plane_idx / conv.cout;
            let co = plane_idx % conv.cout;
            for (p, slot) in plane.iter_mut().enumerate() {
                *slot = pix[(ni * pixels + p) * conv.cout + co];
            }
        };
        if out.len() < 1 << 16 {
            for (idx, plane) in out.data_mut().chunks_mut(pixels).enumerate() {
                scatter_plane(idx, plane);
            }
        } else {
            epim_parallel::for_each_chunk_mut(out.data_mut(), pixels, scatter_plane);
        }
        Ok((out, stats))
    }

    /// Executes the layer on a batch of equal-shaped inputs at once,
    /// returning one output per input plus the summed statistics.
    ///
    /// Semantics are exactly `inputs.iter().map(|x| self.execute(x))`: the
    /// outputs are bit-identical to per-request execution (and to
    /// [`DataPath::execute_reference`]) and the stats equal the sum of the
    /// per-request stats. The speedup comes from restructuring the walk,
    /// not from reassociating any floating-point arithmetic:
    ///
    /// - the im2col-style receptive-field matrix is built once per pixel
    ///   tile drawn from the whole batch, and the finite-DAC sweep
    ///   quantizes it once — per-request execution re-quantizes an element
    ///   for every round that reads it;
    /// - each round's active word-line weights are packed into a contiguous
    ///   panel once per call, then streamed over every pixel of every
    ///   image;
    /// - round metadata (word-line lists, OFAT routing) is walked once per
    ///   tile instead of once per pixel.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::GeometryMismatch`] if the inputs' shapes differ
    /// from one another (callers batching mixed traffic should group by
    /// shape — `epim-runtime`'s micro-batcher does — or fall back to
    /// per-request [`DataPath::execute`]) or fail the usual geometry
    /// checks.
    pub fn execute_batch(
        &self,
        inputs: &[&Tensor],
    ) -> Result<(Vec<Tensor>, DataPathStats), PimError> {
        let Some(first) = inputs.first() else {
            return Ok((Vec::new(), DataPathStats::default()));
        };
        if let Some(bad) = inputs.iter().find(|t| t.shape() != first.shape()) {
            return Err(PimError::geometry(format!(
                "execute_batch requires identical input shapes, got {:?} and {:?}",
                first.shape(),
                bad.shape()
            )));
        }
        let (n, h, w, oh, ow) = self.check_input(first)?;
        let cout = self.plan.spec.conv().cout;
        let mut outs: Vec<Tensor> = (0..inputs.len())
            .map(|_| Tensor::zeros(&[n, cout, oh, ow]))
            .collect();
        let input_slices: Vec<&[f32]> = inputs.iter().map(|t| t.data()).collect();
        let mut out_slices: Vec<&mut [f32]> = outs.iter_mut().map(|t| t.data_mut()).collect();
        let stats = self.execute_batch_core(&input_slices, n, h, w, false, &mut out_slices)?;
        Ok((outs, stats))
    }

    /// Executes the layer on one stacked `(n, c_in, h, w)` NCHW image block
    /// held in a plain slice, writing the `(n, c_out, oh, ow)` result into
    /// `out` — the arena-backed serving path's entry point. With `relu`
    /// set, each output element is clamped with `v.max(0.0)` as it is
    /// scattered, bit-identical to a separate ReLU pass over the unfused
    /// output; the returned [`DataPathStats`] are unaffected by the fusion.
    ///
    /// # Errors
    ///
    /// Same geometry contract as [`DataPath::execute_batch`], plus slice
    /// length checks.
    pub fn execute_stacked_into(
        &self,
        xd: &[f32],
        n: usize,
        h: usize,
        w: usize,
        relu: bool,
        out: &mut [f32],
    ) -> Result<DataPathStats, PimError> {
        let mut outs = [out];
        self.execute_batch_core(&[xd], n, h, w, relu, &mut outs)
    }

    /// The shared body of [`DataPath::execute_batch`] and
    /// [`DataPath::execute_stacked_into`]: every input is an `(n, c_in, h,
    /// w)` NCHW block and every output slice receives the matching `(n,
    /// c_out, oh, ow)` block.
    fn execute_batch_core(
        &self,
        inputs: &[&[f32]],
        n: usize,
        h: usize,
        w: usize,
        relu: bool,
        outs: &mut [&mut [f32]],
    ) -> Result<DataPathStats, PimError> {
        let conv = self.plan.spec.conv();
        let (oh, ow) = self.check_dims(conv.cin, h, w)?;
        if outs.len() != inputs.len() {
            return Err(PimError::geometry(format!(
                "execute_batch_core: {} inputs but {} outputs",
                inputs.len(),
                outs.len()
            )));
        }
        if inputs.iter().any(|x| x.len() < n * conv.cin * h * w) {
            return Err(PimError::geometry("input slice too short".to_string()));
        }
        if outs.iter().any(|o| o.len() < n * conv.cout * oh * ow) {
            return Err(PimError::geometry("output slice too short".to_string()));
        }
        if inputs.is_empty() {
            return Ok(DataPathStats::default());
        }
        let cout = conv.cout;
        let cout_e = self.plan.spec.shape().cout;
        let wrap_on = self.wrapping_enabled && self.wrapping.is_effective();
        let rf_len = conv.matrix_rows();
        let cfg = self.conv_cfg;
        let pixels = oh * ow;
        let rows = inputs.len() * n * pixels;
        let word_lines = self.plan.ifrt.word_lines as u64;
        let dac = self.dac_params();
        let adc = self.adc_params();

        // Pack each executable round's active word-line weights into a
        // contiguous panel, once for the whole batch.
        let md = self.matrix.data();
        let panels: Vec<Vec<f32>> = self
            .plan
            .rounds
            .iter()
            .map(|round| {
                if wrap_on && round.range.start != 0 {
                    return Vec::new();
                }
                let width = round.range.len();
                let mut panel = Vec::with_capacity(round.active.len() * width);
                for &(wl, _) in &round.active {
                    panel.extend_from_slice(&md[wl * cout_e + round.src_col_start..][..width]);
                }
                panel
            })
            .collect();

        // Pixel-major staging buffer over the whole batch, processed in
        // row tiles: rows `tile_rows*i..` of `pix` form tile `i`.
        const TILE_ROWS: usize = 64;
        let tile_rows = TILE_ROWS.min(rows.max(1));
        let mut pix = vec![0.0f32; rows * cout];

        let process_tile = |tile_idx: usize, chunk: &mut [f32]| -> DataPathStats {
            let mut stats = DataPathStats::default();
            let t_rows = chunk.len() / cout;
            let row0 = tile_idx * tile_rows;
            let mut rfq = vec![0.0f32; t_rows * rf_len];

            // Stage 1: the tile's receptive-field matrix (im2col rows
            // across every image of the batch).
            for t in 0..t_rows {
                let row = row0 + t;
                let img = row / pixels;
                let ox = row % ow;
                let oy = (row / ow) % oh;
                let input = inputs[img / n];
                epim_tensor::ops::fill_receptive_field(
                    input,
                    conv.cin,
                    h,
                    w,
                    conv.kh,
                    conv.kw,
                    img % n,
                    oy,
                    ox,
                    cfg,
                    &mut rfq[t * rf_len..(t + 1) * rf_len],
                );
            }
            // Stage 2: one DAC sweep for the whole tile (per-request
            // execution re-quantizes per round).
            if let Some((step, limit)) = dac {
                let t_dac = trace::start();
                quantize_slice(&mut rfq, step, limit);
                trace::span(
                    trace::SpanKind::DacSweep,
                    trace::TENANT_NONE,
                    tile_idx as u32,
                    t_dac,
                    rfq.len() as u64,
                    0,
                );
            }

            // Stage 3: rounds outer, pixel blocks inner — round metadata
            // and the packed panel stay hot across the tile, and the
            // register-blocked micro-kernel shares each panel row across
            // `MVM_TB` pixels.
            let mut a_blk = vec![0.0f32; MVM_TB * self.plan.ifrt.word_lines];
            let mut blk_out = vec![0.0f32; MVM_TB * cout_e];
            let mut adc_sweeps = 0u64;
            let mut adc_elems = 0u64;
            for (round, panel) in self.plan.rounds.iter().zip(&panels) {
                if wrap_on && round.range.start != 0 {
                    continue;
                }
                let width = round.range.len();
                let n_active = round.active.len();
                let tr = t_rows as u64;
                stats.rounds += tr;
                stats.table_lookups += (round.ifat_pairs + word_lines + 1) * tr;
                stats.buffer_reads += n_active as u64 * tr;
                stats.word_line_activations += n_active as u64 * tr;
                stats.bit_line_activations += width as u64 * tr;
                let mut t0 = 0;
                while t0 < t_rows {
                    let tb = MVM_TB.min(t_rows - t0);
                    // Gather the block's driven word-line voltages.
                    for ti in 0..tb {
                        let rf_row = &rfq[(t0 + ti) * rf_len..(t0 + ti + 1) * rf_len];
                        let arow = &mut a_blk[ti * n_active..(ti + 1) * n_active];
                        for (slot, &(_, rf)) in arow.iter_mut().zip(&round.active) {
                            *slot = rf_row[rf];
                        }
                    }
                    mvm_block(&a_blk, panel, &mut blk_out, tb, n_active, width);
                    for ti in 0..tb {
                        let accs = &mut blk_out[ti * width..(ti + 1) * width];
                        if let Some((step, limit)) = adc {
                            quantize_slice(accs, step, limit);
                            adc_sweeps += 1;
                            adc_elems += width as u64;
                        }
                        let t = t0 + ti;
                        let out_vec =
                            &mut chunk[t * cout + round.range.start..t * cout + round.range.stop];
                        for (slot, &a) in out_vec.iter_mut().zip(&*accs) {
                            *slot += a;
                        }
                    }
                    t0 += tb;
                }
                stats.joint_adds += width as u64 * tr;
                stats.buffer_writes += width as u64 * tr;
            }
            if adc_sweeps > 0 {
                trace::instant(
                    trace::SpanKind::AdcSweep,
                    trace::TENANT_NONE,
                    adc_sweeps,
                    adc_elems,
                );
            }

            if wrap_on {
                // Replicate block 0 into the remaining channel blocks.
                let c = self.wrapping.block;
                for out_vec in chunk.chunks_mut(cout) {
                    for x in c..cout {
                        out_vec[x] = out_vec[x % c];
                        stats.wrapped_elements += 1;
                    }
                }
            }
            stats
        };

        let stat_parts: Vec<DataPathStats> = if rows * cout < 1 << 14 {
            pix.chunks_mut(tile_rows * cout)
                .enumerate()
                .map(|(i, c)| process_tile(i, c))
                .collect()
        } else {
            epim_parallel::map_chunks_mut(&mut pix, tile_rows * cout, process_tile)
        };
        let mut stats = DataPathStats::default();
        for part in &stat_parts {
            stats.accumulate(part);
        }

        // Scatter pixel-major -> one NCHW block per request, clamping in
        // the fused-ReLU case (elementwise `max`, bit-identical to a
        // separate pass over the unfused scatter).
        let out_len = n * cout * pixels;
        for (b, od) in outs.iter_mut().enumerate() {
            let base = b * n * pixels;
            let scatter_plane = |plane_idx: usize, plane: &mut [f32]| {
                let ni = plane_idx / cout;
                let co = plane_idx % cout;
                if relu {
                    for (p, slot) in plane.iter_mut().enumerate() {
                        *slot = pix[(base + ni * pixels + p) * cout + co].max(0.0);
                    }
                } else {
                    for (p, slot) in plane.iter_mut().enumerate() {
                        *slot = pix[(base + ni * pixels + p) * cout + co];
                    }
                }
            };
            let od = &mut od[..out_len];
            if out_len < 1 << 16 {
                for (idx, plane) in od.chunks_mut(pixels).enumerate() {
                    scatter_plane(idx, plane);
                }
            } else {
                epim_parallel::for_each_chunk_mut(od, pixels, scatter_plane);
            }
        }
        Ok(stats)
    }

    /// `(step, limit)` of the DAC input quantizer, when finite-precision.
    fn dac_params(&self) -> Option<(f32, f32)> {
        self.analog.dac_bits.map(|bits| {
            let levels = (1u32 << bits.min(24)) as f32;
            (2.0 * self.analog.input_full_scale / levels, levels / 2.0)
        })
    }

    /// `(step, limit)` of the ADC readout quantizer, when finite-precision.
    fn adc_params(&self) -> Option<(f32, f32)> {
        self.analog.adc_bits.map(|bits| {
            let levels = (1u32 << bits.min(24)) as f32;
            (2.0 * self.adc_full_scale / levels, levels / 2.0)
        })
    }

    /// The seed repository's per-pixel execution loop, kept verbatim as the
    /// benchmark baseline and as an independent cross-check for the
    /// compiled-round fast path ([`DataPath::execute`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`DataPath::execute`].
    pub fn execute_reference(&self, input: &Tensor) -> Result<(Tensor, DataPathStats), PimError> {
        let (n, h, w, oh, ow) = self.check_input(input)?;
        let conv = self.plan.spec.conv();
        let mut out = Tensor::zeros(&[n, conv.cout, oh, ow]);
        let mut stats = DataPathStats::default();
        let wrap_on = self.wrapping_enabled && self.wrapping.is_effective();
        let rf_len = conv.matrix_rows();
        let mut receptive = vec![0.0f32; rf_len];
        let mut out_vec = vec![0.0f32; conv.cout];
        let md = self.matrix.data();
        let cout_e = self.plan.spec.shape().cout;

        for ni in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    for ci in 0..conv.cin {
                        for ky in 0..conv.kh {
                            let iy = (oy * self.conv_cfg.stride + ky) as isize
                                - self.conv_cfg.padding as isize;
                            for kx in 0..conv.kw {
                                let ix = (ox * self.conv_cfg.stride + kx) as isize
                                    - self.conv_cfg.padding as isize;
                                let v = if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize
                                {
                                    0.0
                                } else {
                                    input.at(&[ni, ci, iy as usize, ix as usize])
                                };
                                receptive[(ci * conv.kh + ky) * conv.kw + kx] = v;
                            }
                        }
                    }

                    out_vec.iter_mut().for_each(|v| *v = 0.0);
                    let mut gathered: Vec<f32> = Vec::new();
                    for ((ifat_ranges, ifrt_seq), ofat) in self
                        .plan
                        .ifat
                        .entries
                        .iter()
                        .zip(&self.plan.ifrt.sequences)
                        .zip(&self.plan.ofat.entries)
                    {
                        if wrap_on && ofat.range.start != 0 {
                            continue;
                        }
                        stats.rounds += 1;
                        gathered.clear();
                        for r in ifat_ranges {
                            gathered.extend_from_slice(&receptive[r.start..r.stop]);
                            stats.table_lookups += 1;
                        }
                        stats.buffer_reads += gathered.len() as u64;
                        if let Some((step, limit)) = self.dac_params() {
                            quantize_slice(&mut gathered, step, limit);
                        }
                        stats.table_lookups += self.plan.ifrt.word_lines as u64;
                        let active_wls: Vec<(usize, f32)> = ifrt_seq
                            .iter()
                            .enumerate()
                            .filter_map(|(wl, &pos)| pos.map(|p| (wl, gathered[p])))
                            .collect();
                        stats.word_line_activations += active_wls.len() as u64;
                        let width = ofat.range.len();
                        stats.bit_line_activations += width as u64;
                        stats.table_lookups += 1;
                        for j in 0..width {
                            let col = ofat.src_col_start + j;
                            let mut acc = 0.0f32;
                            for &(wl, v) in &active_wls {
                                acc += v * md[wl * cout_e + col];
                            }
                            if let Some((step, limit)) = self.adc_params() {
                                acc = quantize_value(acc, step, limit);
                            }
                            out_vec[ofat.range.start + j] += acc;
                            stats.joint_adds += 1;
                            stats.buffer_writes += 1;
                        }
                    }
                    if wrap_on {
                        let c = self.wrapping.block;
                        for x in c..out_vec.len() {
                            out_vec[x] = out_vec[x % c];
                            stats.wrapped_elements += 1;
                        }
                    }
                    for (co, &v) in out_vec.iter().enumerate() {
                        out.set(&[ni, co, oy, ox], v)
                            .expect("output index in range");
                    }
                }
            }
        }
        Ok((out, stats))
    }

    /// Validates the input tensor and returns `(n, h, w, oh, ow)`.
    fn check_input(&self, input: &Tensor) -> Result<(usize, usize, usize, usize, usize), PimError> {
        if input.rank() != 4 {
            return Err(PimError::geometry(format!(
                "input must be 4-D (N, C, H, W), got rank {}",
                input.rank()
            )));
        }
        let (n, c_in, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let (oh, ow) = self.check_dims(c_in, h, w)?;
        Ok((n, h, w, oh, ow))
    }

    /// Validates channel count and convolution geometry for an `h x w`
    /// input with `c_in` channels, returning `(oh, ow)`.
    fn check_dims(&self, c_in: usize, h: usize, w: usize) -> Result<(usize, usize), PimError> {
        let conv = self.plan.spec.conv();
        if c_in != conv.cin {
            return Err(PimError::geometry(format!(
                "input has {c_in} channels, layer expects {}",
                conv.cin
            )));
        }
        conv2d_out_dims(h, w, conv.kh, conv.kw, self.conv_cfg).map_err(PimError::Tensor)
    }

    /// Runs all activation rounds for one output pixel through the compiled
    /// round plan. `scratch` must hold at least `cout_e` floats.
    fn execute_pixel(
        &self,
        receptive: &[f32],
        out_vec: &mut [f32],
        scratch: &mut [f32],
        wrap_on: bool,
        stats: &mut DataPathStats,
    ) {
        let md = self.matrix.data();
        let cout_e = self.plan.spec.shape().cout;
        let word_lines = self.plan.ifrt.word_lines as u64;
        for round in &self.plan.rounds {
            if wrap_on && round.range.start != 0 {
                continue;
            }
            stats.rounds += 1;
            // Table traffic: one lookup per IFAT pair, one per word line
            // (IFRT), one OFAT pair — identical to the seed accounting.
            stats.table_lookups += round.ifat_pairs + word_lines + 1;
            stats.buffer_reads += round.active.len() as u64;
            stats.word_line_activations += round.active.len() as u64;

            let width = round.range.len();
            stats.bit_line_activations += width as u64;
            let accs = &mut scratch[..width];
            accs.fill(0.0);
            let col0 = round.src_col_start;

            // Crossbar MVM over the active word lines: the inner loop walks
            // `width` contiguous matrix columns, so it vectorizes.
            if let Some((step, limit)) = self.dac_params() {
                // Finite-precision DAC, applied to each driven word-line
                // voltage exactly as the seed applied it to the gather.
                for &(wl, rf) in &round.active {
                    let v = quantize_value(receptive[rf], step, limit);
                    let mrow = &md[wl * cout_e + col0..][..width];
                    for (a, &m) in accs.iter_mut().zip(mrow) {
                        *a += v * m;
                    }
                }
            } else {
                for &(wl, rf) in &round.active {
                    let v = receptive[rf];
                    let mrow = &md[wl * cout_e + col0..][..width];
                    for (a, &m) in accs.iter_mut().zip(mrow) {
                        *a += v * m;
                    }
                }
            }

            // Finite-precision ADC on each bit-line partial sum (SIMD
            // sweep), then the joint module accumulates into the output
            // range.
            if let Some((step, limit)) = self.adc_params() {
                quantize_slice(accs, step, limit);
            }
            for (slot, &a) in out_vec[round.range.start..round.range.stop]
                .iter_mut()
                .zip(&*accs)
            {
                *slot += a;
            }
            stats.joint_adds += width as u64;
            stats.buffer_writes += width as u64;
        }

        if wrap_on {
            // Replicate block 0 into the remaining channel blocks (Eq. 9).
            let c = self.wrapping.block;
            for x in c..out_vec.len() {
                out_vec[x] = out_vec[x % c];
                stats.wrapped_elements += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epim_core::{ConvShape, EpitomeDesigner, EpitomeShape, EpitomeSpec};
    use epim_tensor::ops::conv2d;
    use epim_tensor::{init, rng};

    fn random_epitome(conv: ConvShape, eshape: EpitomeShape, seed: u64) -> Epitome {
        let spec = EpitomeSpec::new(conv, eshape).unwrap();
        let mut r = rng::seeded(seed);
        let data = init::uniform(&eshape.dims(), -1.0, 1.0, &mut r);
        Epitome::from_tensor(spec, data).unwrap()
    }

    /// The core invariant from DESIGN.md: data path output == conv2d with
    /// the reconstructed weight.
    fn assert_equivalent(conv: ConvShape, eshape: EpitomeShape, cfg: Conv2dCfg, seed: u64) {
        let epi = random_epitome(conv, eshape, seed);
        let mut r = rng::seeded(seed ^ 0xabcd);
        let x = init::uniform(&[2, conv.cin, 8, 8], -1.0, 1.0, &mut r);
        let w = epi.reconstruct().unwrap();
        let want = conv2d(&x, &w, None, cfg).unwrap();

        for wrapping in [false, true] {
            let dp = DataPath::new(&epi, cfg, wrapping).unwrap();
            let (got, stats) = dp.execute(&x).unwrap();
            assert!(
                got.allclose(&want, 1e-3).unwrap(),
                "wrapping={wrapping} conv={conv} mse={}",
                got.mse(&want).unwrap()
            );
            assert!(stats.rounds > 0);
        }
    }

    #[test]
    fn equivalence_identity_epitome() {
        assert_equivalent(
            ConvShape::new(6, 4, 3, 3),
            EpitomeShape::new(6, 4, 3, 3),
            Conv2dCfg {
                stride: 1,
                padding: 1,
            },
            1,
        );
    }

    #[test]
    fn equivalence_cout_compressed() {
        assert_equivalent(
            ConvShape::new(8, 4, 3, 3),
            EpitomeShape::new(4, 4, 3, 3),
            Conv2dCfg {
                stride: 1,
                padding: 1,
            },
            2,
        );
    }

    #[test]
    fn equivalence_cin_and_spatial_compressed() {
        assert_equivalent(
            ConvShape::new(6, 9, 3, 3),
            EpitomeShape::new(6, 5, 2, 2),
            Conv2dCfg {
                stride: 1,
                padding: 1,
            },
            3,
        );
    }

    #[test]
    fn equivalence_fully_compressed_strided() {
        assert_equivalent(
            ConvShape::new(8, 6, 3, 3),
            EpitomeShape::new(4, 3, 2, 2),
            Conv2dCfg {
                stride: 2,
                padding: 1,
            },
            4,
        );
    }

    #[test]
    fn equivalence_1x1_conv() {
        assert_equivalent(
            ConvShape::new(16, 8, 1, 1),
            EpitomeShape::new(8, 4, 1, 1),
            Conv2dCfg {
                stride: 1,
                padding: 0,
            },
            5,
        );
    }

    #[test]
    fn wrapping_skips_rounds_and_replicates() {
        let conv = ConvShape::new(8, 4, 3, 3);
        let epi = random_epitome(conv, EpitomeShape::new(4, 4, 3, 3), 6);
        let cfg = Conv2dCfg {
            stride: 1,
            padding: 1,
        };
        let mut r = rng::seeded(7);
        let x = init::uniform(&[1, 4, 6, 6], -1.0, 1.0, &mut r);

        let off = DataPath::new(&epi, cfg, false).unwrap();
        let on = DataPath::new(&epi, cfg, true).unwrap();
        let (_, s_off) = off.execute(&x).unwrap();
        let (_, s_on) = on.execute(&x).unwrap();
        assert_eq!(s_on.rounds * 2, s_off.rounds);
        assert!(s_on.buffer_writes * 2 == s_off.buffer_writes);
        assert!(s_on.wrapped_elements > 0);
        assert_eq!(s_off.wrapped_elements, 0);
    }

    #[test]
    fn ifrt_sequences_have_crossbar_length() {
        let conv = ConvShape::new(8, 4, 3, 3);
        let epi = random_epitome(conv, EpitomeShape::new(4, 2, 2, 2), 8);
        let dp = DataPath::new(&epi, Conv2dCfg::default(), false).unwrap();
        let rows_e = epi.spec().shape().matrix_rows();
        for seq in &dp.ifrt().sequences {
            assert_eq!(seq.len(), rows_e);
        }
        // Number of sequences == number of sampled patches (paper §4.3).
        assert_eq!(dp.ifrt().sequences.len(), epi.spec().plan().patches().len());
        // IFAT and OFAT have one entry per round too.
        assert_eq!(dp.ifat().entries.len(), dp.ofat().entries.len());
    }

    #[test]
    fn stats_word_lines_match_patch_sizes() {
        let conv = ConvShape::new(4, 4, 3, 3);
        let epi = random_epitome(conv, EpitomeShape::new(4, 2, 2, 2), 9);
        let cfg = Conv2dCfg {
            stride: 1,
            padding: 0,
        };
        let dp = DataPath::new(&epi, cfg, false).unwrap();
        let mut r = rng::seeded(10);
        let x = init::uniform(&[1, 4, 5, 5], -1.0, 1.0, &mut r);
        let (out, stats) = dp.execute(&x).unwrap();
        let pixels = (out.shape()[2] * out.shape()[3]) as u64;
        let per_pixel_wls: u64 = epi
            .spec()
            .plan()
            .patches()
            .iter()
            .map(|p| (p.size[1] * p.size[2] * p.size[3]) as u64)
            .sum();
        assert_eq!(stats.word_line_activations, pixels * per_pixel_wls);
        assert_eq!(
            stats.rounds,
            pixels * epi.spec().plan().patches().len() as u64
        );
    }

    #[test]
    fn rejects_wrong_input_channels() {
        let conv = ConvShape::new(4, 4, 3, 3);
        let epi = random_epitome(conv, EpitomeShape::new(4, 4, 3, 3), 11);
        let dp = DataPath::new(&epi, Conv2dCfg::default(), false).unwrap();
        let x = Tensor::zeros(&[1, 3, 5, 5]);
        assert!(dp.execute(&x).is_err());
        assert!(dp.execute(&Tensor::zeros(&[5, 5])).is_err());
    }

    #[test]
    fn execute_matches_seed_reference_loop() {
        // The compiled-round fast path must agree with the seed's original
        // per-pixel pipeline — outputs to float tolerance (different but
        // equivalent summation order), stats exactly.
        let conv = ConvShape::new(8, 6, 3, 3);
        let epi = random_epitome(conv, EpitomeShape::new(4, 3, 2, 2), 40);
        let mut r = rng::seeded(41);
        let x = init::uniform(&[2, 6, 7, 7], -1.0, 1.0, &mut r);
        for wrapping in [false, true] {
            for analog in [
                AnalogModel::ideal(),
                AnalogModel {
                    weight_noise_std: 0.02,
                    adc_bits: Some(8),
                    dac_bits: Some(9),
                    ..AnalogModel::ideal()
                },
            ] {
                let cfg = Conv2dCfg {
                    stride: 2,
                    padding: 1,
                };
                let dp = DataPath::with_analog(&epi, cfg, wrapping, analog).unwrap();
                let (fast, fast_stats) = dp.execute(&x).unwrap();
                let (slow, slow_stats) = dp.execute_reference(&x).unwrap();
                assert!(
                    fast.allclose(&slow, 1e-4).unwrap(),
                    "wrapping={wrapping} mse={}",
                    fast.mse(&slow).unwrap()
                );
                assert_eq!(fast_stats, slow_stats, "wrapping={wrapping}");
            }
        }
    }

    #[test]
    fn ideal_analog_model_is_exact() {
        let conv = ConvShape::new(8, 4, 3, 3);
        let epi = random_epitome(conv, EpitomeShape::new(4, 4, 2, 2), 20);
        let cfg = Conv2dCfg {
            stride: 1,
            padding: 1,
        };
        let mut r = rng::seeded(21);
        let x = init::uniform(&[1, 4, 6, 6], -1.0, 1.0, &mut r);
        let a = DataPath::new(&epi, cfg, false).unwrap();
        let b = DataPath::with_analog(&epi, cfg, false, AnalogModel::ideal()).unwrap();
        assert_eq!(a.execute(&x).unwrap().0, b.execute(&x).unwrap().0);
        assert!(!b.analog().is_noisy());
    }

    #[test]
    fn weight_noise_error_grows_with_std() {
        let conv = ConvShape::new(8, 4, 3, 3);
        let epi = random_epitome(conv, EpitomeShape::new(4, 4, 2, 2), 22);
        let cfg = Conv2dCfg {
            stride: 1,
            padding: 1,
        };
        let mut r = rng::seeded(23);
        let x = init::uniform(&[1, 4, 6, 6], -1.0, 1.0, &mut r);
        let ideal = DataPath::new(&epi, cfg, false)
            .unwrap()
            .execute(&x)
            .unwrap()
            .0;
        let mse_at = |std: f32| {
            let dp = DataPath::with_analog(
                &epi,
                cfg,
                false,
                AnalogModel {
                    weight_noise_std: std,
                    adc_bits: None,
                    noise_seed: 5,
                    ..AnalogModel::ideal()
                },
            )
            .unwrap();
            dp.execute(&x).unwrap().0.mse(&ideal).unwrap()
        };
        let low = mse_at(0.01);
        let high = mse_at(0.10);
        assert!(low > 0.0, "1% noise must perturb the output");
        assert!(
            high > low * 10.0,
            "10x noise should raise MSE ~100x: {low} vs {high}"
        );
    }

    #[test]
    fn adc_precision_controls_error() {
        let conv = ConvShape::new(8, 4, 3, 3);
        let epi = random_epitome(conv, EpitomeShape::new(4, 4, 2, 2), 24);
        let cfg = Conv2dCfg {
            stride: 1,
            padding: 1,
        };
        let mut r = rng::seeded(25);
        let x = init::uniform(&[1, 4, 6, 6], -1.0, 1.0, &mut r);
        let ideal = DataPath::new(&epi, cfg, false)
            .unwrap()
            .execute(&x)
            .unwrap()
            .0;
        let mse_at = |bits: u8| {
            let dp = DataPath::with_analog(
                &epi,
                cfg,
                false,
                AnalogModel {
                    weight_noise_std: 0.0,
                    adc_bits: Some(bits),
                    noise_seed: 0,
                    ..AnalogModel::ideal()
                },
            )
            .unwrap();
            dp.execute(&x).unwrap().0.mse(&ideal).unwrap()
        };
        let coarse = mse_at(4);
        let fine = mse_at(12);
        assert!(coarse > fine * 50.0, "4-bit {coarse} vs 12-bit {fine}");
        assert!(fine < 1e-4, "12-bit ADC should be near-exact: {fine}");
    }

    #[test]
    fn noise_deterministic_per_seed() {
        let conv = ConvShape::new(4, 4, 3, 3);
        let epi = random_epitome(conv, EpitomeShape::new(4, 2, 2, 2), 26);
        let cfg = Conv2dCfg::default();
        let x = Tensor::ones(&[1, 4, 5, 5]);
        let run = |seed: u64| {
            DataPath::with_analog(
                &epi,
                cfg,
                false,
                AnalogModel {
                    weight_noise_std: 0.05,
                    adc_bits: None,
                    noise_seed: seed,
                    ..AnalogModel::ideal()
                },
            )
            .unwrap()
            .execute(&x)
            .unwrap()
            .0
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn dac_precision_controls_error() {
        // The A9 activation-precision knob, applied functionally.
        let conv = ConvShape::new(8, 4, 3, 3);
        let epi = random_epitome(conv, EpitomeShape::new(4, 4, 2, 2), 30);
        let cfg = Conv2dCfg {
            stride: 1,
            padding: 1,
        };
        let mut r = rng::seeded(31);
        let x = init::uniform(&[1, 4, 6, 6], -1.0, 1.0, &mut r);
        let ideal = DataPath::new(&epi, cfg, false)
            .unwrap()
            .execute(&x)
            .unwrap()
            .0;
        let mse_at = |bits: u8| {
            let dp = DataPath::with_analog(
                &epi,
                cfg,
                false,
                AnalogModel {
                    dac_bits: Some(bits),
                    ..AnalogModel::ideal()
                },
            )
            .unwrap();
            dp.execute(&x).unwrap().0.mse(&ideal).unwrap()
        };
        let a3 = mse_at(3);
        let a9 = mse_at(9);
        assert!(a3 > a9 * 100.0, "3-bit {a3} vs 9-bit {a9}");
        assert!(
            a9 < 1e-4,
            "9-bit input quantization should be near-exact: {a9}"
        );
    }

    #[test]
    fn invalid_analog_parameters_rejected() {
        let conv = ConvShape::new(4, 4, 3, 3);
        let epi = random_epitome(conv, EpitomeShape::new(4, 4, 3, 3), 27);
        let cfg = Conv2dCfg::default();
        let bad_std = AnalogModel {
            weight_noise_std: -0.1,
            adc_bits: None,
            noise_seed: 0,
            ..AnalogModel::ideal()
        };
        assert!(DataPath::with_analog(&epi, cfg, false, bad_std).is_err());
        let bad_adc = AnalogModel {
            weight_noise_std: 0.0,
            adc_bits: Some(0),
            noise_seed: 0,
            ..AnalogModel::ideal()
        };
        assert!(DataPath::with_analog(&epi, cfg, false, bad_adc).is_err());
        let bad_dac = AnalogModel {
            dac_bits: Some(0),
            ..AnalogModel::ideal()
        };
        assert!(DataPath::with_analog(&epi, cfg, false, bad_dac).is_err());
        let bad_fs = AnalogModel {
            input_full_scale: 0.0,
            ..AnalogModel::ideal()
        };
        assert!(DataPath::with_analog(&epi, cfg, false, bad_fs).is_err());
    }

    #[test]
    fn execute_batch_bit_identical_to_sequential_execute() {
        let conv = ConvShape::new(8, 6, 3, 3);
        let epi = random_epitome(conv, EpitomeShape::new(4, 3, 2, 2), 50);
        let mut r = rng::seeded(51);
        for wrapping in [false, true] {
            for analog in [
                AnalogModel::ideal(),
                AnalogModel {
                    weight_noise_std: 0.02,
                    adc_bits: Some(8),
                    dac_bits: Some(9),
                    ..AnalogModel::ideal()
                },
            ] {
                let cfg = Conv2dCfg {
                    stride: 1,
                    padding: 1,
                };
                let dp = DataPath::with_analog(&epi, cfg, wrapping, analog).unwrap();
                // Mixed per-request image counts: shapes must match, N may
                // exceed 1 per request.
                let xs: Vec<Tensor> = (0..5)
                    .map(|_| init::uniform(&[2, 6, 7, 7], -1.0, 1.0, &mut r))
                    .collect();
                let refs: Vec<&Tensor> = xs.iter().collect();
                let (batched, batch_stats) = dp.execute_batch(&refs).unwrap();
                assert_eq!(batched.len(), xs.len());
                let mut want_stats = DataPathStats::default();
                for (x, got) in xs.iter().zip(&batched) {
                    let (want, s) = dp.execute(x).unwrap();
                    assert_eq!(got, &want, "wrapping={wrapping}");
                    want_stats.accumulate(&s);
                }
                assert_eq!(batch_stats, want_stats, "wrapping={wrapping}");
            }
        }
    }

    #[test]
    fn execute_batch_bit_identical_to_reference() {
        let conv = ConvShape::new(8, 4, 3, 3);
        let epi = random_epitome(conv, EpitomeShape::new(4, 4, 2, 2), 52);
        let cfg = Conv2dCfg {
            stride: 2,
            padding: 1,
        };
        let analog = AnalogModel {
            adc_bits: Some(8),
            dac_bits: Some(9),
            ..AnalogModel::ideal()
        };
        let dp = DataPath::with_analog(&epi, cfg, true, analog).unwrap();
        let mut r = rng::seeded(53);
        let xs: Vec<Tensor> = (0..3)
            .map(|_| init::uniform(&[1, 4, 6, 6], -1.0, 1.0, &mut r))
            .collect();
        let refs: Vec<&Tensor> = xs.iter().collect();
        let (batched, batch_stats) = dp.execute_batch(&refs).unwrap();
        let mut ref_stats = DataPathStats::default();
        for (x, got) in xs.iter().zip(&batched) {
            let (want, s) = dp.execute_reference(x).unwrap();
            assert_eq!(got, &want);
            ref_stats.accumulate(&s);
        }
        assert_eq!(batch_stats, ref_stats);
    }

    #[test]
    fn execute_batch_edge_cases() {
        let conv = ConvShape::new(4, 4, 3, 3);
        let epi = random_epitome(conv, EpitomeShape::new(4, 2, 2, 2), 54);
        let dp = DataPath::new(&epi, Conv2dCfg::default(), false).unwrap();

        // Empty batch: no outputs, zero stats.
        let (outs, stats) = dp.execute_batch(&[]).unwrap();
        assert!(outs.is_empty());
        assert_eq!(stats, DataPathStats::default());

        // Diverging shapes are rejected (runtime groups by shape instead).
        let a = Tensor::zeros(&[1, 4, 5, 5]);
        let b = Tensor::zeros(&[1, 4, 6, 6]);
        assert!(dp.execute_batch(&[&a, &b]).is_err());

        // Singleton batch equals plain execute.
        let mut r = rng::seeded(55);
        let x = init::uniform(&[1, 4, 5, 5], -1.0, 1.0, &mut r);
        let (outs, stats) = dp.execute_batch(&[&x]).unwrap();
        let (want, want_stats) = dp.execute(&x).unwrap();
        assert_eq!(outs[0], want);
        assert_eq!(stats, want_stats);
    }

    #[test]
    fn compiled_plan_shared_across_data_paths() {
        let conv = ConvShape::new(8, 4, 3, 3);
        let spec = EpitomeSpec::new(conv, EpitomeShape::new(4, 4, 2, 2)).unwrap();
        let plan = std::sync::Arc::new(CompiledPlan::compile(&spec).unwrap());
        assert_eq!(plan.rounds_per_pixel(), spec.plan().patches().len());

        let epi = random_epitome(conv, EpitomeShape::new(4, 4, 2, 2), 56);
        let cfg = Conv2dCfg {
            stride: 1,
            padding: 1,
        };
        let from_plan =
            DataPath::with_plan(plan.clone(), &epi, cfg, false, AnalogModel::ideal()).unwrap();
        let from_scratch = DataPath::new(&epi, cfg, false).unwrap();
        let mut r = rng::seeded(57);
        let x = init::uniform(&[1, 4, 6, 6], -1.0, 1.0, &mut r);
        assert_eq!(
            from_plan.execute(&x).unwrap().0,
            from_scratch.execute(&x).unwrap().0
        );
        // Two data paths can share one plan allocation.
        let second = DataPath::with_plan(plan.clone(), &epi, cfg, true, AnalogModel::ideal());
        assert!(second.is_ok());
        assert!(std::sync::Arc::ptr_eq(from_plan.compiled_plan(), &plan));

        // A plan compiled for a different spec is rejected.
        let other_spec = EpitomeSpec::new(conv, EpitomeShape::new(8, 4, 3, 3)).unwrap();
        let other_plan = std::sync::Arc::new(CompiledPlan::compile(&other_spec).unwrap());
        assert!(DataPath::with_plan(other_plan, &epi, cfg, false, AnalogModel::ideal()).is_err());
    }

    #[test]
    fn designed_spec_equivalence() {
        // End-to-end with the designer, like a real layer replacement.
        let conv = ConvShape::new(32, 16, 3, 3);
        let spec = EpitomeDesigner::new(16, 16).design(conv, 72, 16).unwrap();
        let mut r = rng::seeded(12);
        let data = init::uniform(&spec.shape().dims(), -0.5, 0.5, &mut r);
        let epi = Epitome::from_tensor(spec, data).unwrap();
        let cfg = Conv2dCfg {
            stride: 1,
            padding: 1,
        };
        let x = init::uniform(&[1, 16, 7, 7], -1.0, 1.0, &mut r);
        let w = epi.reconstruct().unwrap();
        let want = conv2d(&x, &w, None, cfg).unwrap();
        let dp = DataPath::new(&epi, cfg, true).unwrap();
        let (got, _) = dp.execute(&x).unwrap();
        assert!(got.allclose(&want, 1e-3).unwrap());
    }
}
