//! The analytic (behavior-level) cost model.
//!
//! Behavior counting follows MNSIM's philosophy: for every layer we count
//! how many times each basic hardware behavior fires and weight the counts
//! by the [`crate::HardwareLut`] entries.
//!
//! **Convolution layer.** The mapped matrix occupies `row_tiles × col_tiles`
//! crossbars that all fire **in parallel**, once per output pixel, with
//! bit-serial activation streaming (`act_bits` sub-rounds):
//!
//! ```text
//! latency  = pixels · (act_bits · T_round + (R + C) · t_buffer)
//! energy   = pixels · (act_bits · E_round + R·e_read + C·e_write)
//! ```
//!
//! **Epitome layer.** The (much smaller) epitome matrix is mapped once, but
//! every output pixel requires `plan.activation_rounds()` **serial**
//! activation rounds — one per sampled patch, each engaging only the word
//! and bit lines of that patch (paper §4.1). Each round writes its partial
//! outputs through the joint module, which is why the output buffer is
//! written `rounds`-fold more than a convolution (paper §5.1). Output
//! channel wrapping (§5.3) executes only the first output-channel block and
//! divides both rounds and buffer writes by the wrapping factor `r`.

use crate::{AcceleratorConfig, HardwareLut, Mapping, PimError, Precision};
use epim_core::{wrapping_factor, ConvShape, EpitomeSpec, MappedMatrix};
use serde::{Deserialize, Serialize};

/// Simulated costs of one layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerCosts {
    /// End-to-end layer latency, nanoseconds.
    pub latency_ns: f64,
    /// Layer energy, picojoules.
    pub energy_pj: f64,
    /// Crossbars allocated to the layer's weights.
    pub crossbars: usize,
    /// Memristor utilization of the allocated crossbars, `(0, 1]`.
    pub utilization: f64,
    /// Weight parameters stored.
    pub params: usize,
    /// Crossbar activation rounds per output pixel (1 for convolution).
    pub rounds_per_pixel: usize,
    /// Total output-buffer element writes.
    pub buffer_writes: u64,
    /// Total input-buffer element reads.
    pub buffer_reads: u64,
    /// Output pixels simulated.
    pub out_pixels: usize,
}

impl LayerCosts {
    /// Energy-delay product, pJ·ns.
    pub fn edp(&self) -> f64 {
        self.energy_pj * self.latency_ns
    }

    /// Latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.latency_ns * 1e-6
    }

    /// Energy in millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.energy_pj * 1e-9
    }

    /// Element-wise sum of two layer costs (utilization becomes the
    /// crossbar-weighted average).
    pub fn combine(&self, other: &LayerCosts) -> LayerCosts {
        let xb = self.crossbars + other.crossbars;
        let util = if xb == 0 {
            0.0
        } else {
            (self.utilization * self.crossbars as f64 + other.utilization * other.crossbars as f64)
                / xb as f64
        };
        LayerCosts {
            latency_ns: self.latency_ns + other.latency_ns,
            energy_pj: self.energy_pj + other.energy_pj,
            crossbars: xb,
            utilization: util,
            params: self.params + other.params,
            rounds_per_pixel: self.rounds_per_pixel.max(other.rounds_per_pixel),
            buffer_writes: self.buffer_writes + other.buffer_writes,
            buffer_reads: self.buffer_reads + other.buffer_reads,
            out_pixels: self.out_pixels + other.out_pixels,
        }
    }
}

/// The behavior-level cost model: configuration + lookup table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    cfg: AcceleratorConfig,
    lut: HardwareLut,
}

impl CostModel {
    /// Creates a cost model with the calibrated default LUT.
    pub fn new(cfg: AcceleratorConfig) -> Self {
        CostModel {
            cfg,
            lut: HardwareLut::default(),
        }
    }

    /// Creates a cost model with an explicit LUT.
    pub fn with_lut(cfg: AcceleratorConfig, lut: HardwareLut) -> Self {
        CostModel { cfg, lut }
    }

    /// The accelerator configuration.
    pub fn config(&self) -> AcceleratorConfig {
        self.cfg
    }

    /// The lookup table in use.
    pub fn lut(&self) -> &HardwareLut {
        &self.lut
    }

    /// Costs of a plain convolution layer producing `out_pixels` output
    /// positions (OH × OW, batch 1).
    ///
    /// # Panics
    ///
    /// Panics if the configuration or precision is invalid; use
    /// [`CostModel::try_conv_layer`] for a fallible variant.
    pub fn conv_layer(&self, conv: ConvShape, out_pixels: usize, prec: Precision) -> LayerCosts {
        self.try_conv_layer(conv, out_pixels, prec)
            .expect("valid configuration and shapes")
    }

    /// Fallible variant of [`CostModel::conv_layer`].
    ///
    /// # Errors
    ///
    /// Returns [`PimError`] for invalid geometry or precision.
    pub fn try_conv_layer(
        &self,
        conv: ConvShape,
        out_pixels: usize,
        prec: Precision,
    ) -> Result<LayerCosts, PimError> {
        self.cfg.validate()?;
        let mapping = Mapping::new(MappedMatrix::from_conv(conv), self.cfg.crossbar, prec)?;
        let r = conv.matrix_rows() as f64;
        let c = conv.matrix_cols() as f64;
        let ab = prec.act_bits as f64;
        let lut = &self.lut;

        // One parallel round per pixel: the round time is set by a full
        // crossbar tile (rows/cols capped at the tile geometry), plus the
        // serial shift-add merge of the weight bit slices.
        let t_round = lut.t_xbar_round_ns
            + self.cfg.crossbar.rows.min(conv.matrix_rows()) as f64 * lut.t_dac_row_ns
            + self.cfg.crossbar.cols as f64 * lut.t_adc_col_ns
            + mapping.slices as f64 * lut.t_shift_add_slice_ns;
        let latency_per_pixel = ab * t_round + (r + c) * lut.t_buffer_elem_ns;

        let e_round = mapping.used_cells() as f64 * lut.e_cell_pj
            + r * mapping.col_tiles as f64 * lut.e_dac_row_pj
            + (c * mapping.slices as f64)
                * mapping.row_tiles as f64
                * (lut.e_adc_col_pj + lut.e_shift_add_pj);
        let energy_per_pixel = ab * e_round + r * lut.e_buffer_read_pj + c * lut.e_buffer_write_pj;

        Ok(LayerCosts {
            latency_ns: out_pixels as f64 * latency_per_pixel,
            energy_pj: out_pixels as f64 * energy_per_pixel,
            crossbars: mapping.crossbars,
            utilization: mapping.utilization,
            params: conv.params(),
            rounds_per_pixel: 1,
            buffer_writes: (out_pixels as u64) * conv.matrix_cols() as u64,
            buffer_reads: (out_pixels as u64) * conv.matrix_rows() as u64,
            out_pixels,
        })
    }

    /// Costs of an epitome layer producing `out_pixels` output positions.
    ///
    /// Honors the configuration's `channel_wrapping` flag: when on and the
    /// spec's plan wraps with factor `r > 1`, only `rounds / r` activation
    /// rounds execute and output writes shrink accordingly (paper §5.3).
    ///
    /// # Panics
    ///
    /// Panics if the configuration or precision is invalid; use
    /// [`CostModel::try_epitome_layer`] for a fallible variant.
    pub fn epitome_layer(
        &self,
        spec: &EpitomeSpec,
        out_pixels: usize,
        prec: Precision,
    ) -> LayerCosts {
        self.try_epitome_layer(spec, out_pixels, prec)
            .expect("valid configuration and shapes")
    }

    /// Fallible variant of [`CostModel::epitome_layer`].
    ///
    /// # Errors
    ///
    /// Returns [`PimError`] for invalid geometry or precision.
    pub fn try_epitome_layer(
        &self,
        spec: &EpitomeSpec,
        out_pixels: usize,
        prec: Precision,
    ) -> Result<LayerCosts, PimError> {
        self.cfg.validate()?;
        let mapping = Mapping::new(
            MappedMatrix::from_epitome(spec.shape()),
            self.cfg.crossbar,
            prec,
        )?;
        let wrap = wrapping_factor(spec.plan());
        let wrap_on = self.cfg.channel_wrapping && wrap.is_effective();
        let lut = &self.lut;
        let ab = prec.act_bits as f64;
        let slices = mapping.slices as f64;

        let mut latency_per_pixel = 0.0f64;
        let mut energy_per_pixel = 0.0f64;
        let mut reads_per_pixel = 0u64;
        let mut writes_per_pixel = 0u64;
        let mut rounds = 0usize;

        for patch in spec.plan().patches() {
            if wrap_on && patch.dst[0] != 0 {
                // Wrapped rounds are skipped: their output channels are
                // replicated from block 0 (Eq. 9).
                continue;
            }
            rounds += 1;
            let active_rows = (patch.size[1] * patch.size[2] * patch.size[3]) as f64;
            let active_cols_logical = patch.size[0] as f64;
            let active_cols = active_cols_logical * slices;

            let t_round = lut.t_xbar_round_ns
                + active_rows.min(self.cfg.crossbar.rows as f64) * lut.t_dac_row_ns
                + active_cols.min(self.cfg.crossbar.cols as f64) * lut.t_adc_col_ns
                + slices * lut.t_shift_add_slice_ns;
            latency_per_pixel +=
                ab * t_round + (active_rows + active_cols_logical) * lut.t_buffer_elem_ns;

            // A patch spanning several crossbar tiles pays DACs per column
            // tile and ADCs/shift-adds per row tile, exactly like the
            // convolution model.
            let row_tiles_p = (active_rows / self.cfg.crossbar.rows as f64)
                .ceil()
                .max(1.0);
            let col_tiles_p = (active_cols / self.cfg.crossbar.cols as f64)
                .ceil()
                .max(1.0);
            let cells = active_rows * active_cols;
            let e_round = cells * lut.e_cell_pj
                + active_rows * col_tiles_p * lut.e_dac_row_pj
                + active_cols * row_tiles_p * (lut.e_adc_col_pj + lut.e_shift_add_pj);
            // Index tables: one IFAT + one OFAT entry per round, one IFRT
            // entry per active word line (paper §4.3).
            let e_tables = (2.0 + active_rows) * lut.e_index_lookup_pj;
            // Joint module accumulates every partial output element.
            let e_joint = active_cols_logical * lut.e_joint_add_pj;
            energy_per_pixel += ab * e_round
                + active_rows * lut.e_buffer_read_pj
                + active_cols_logical * lut.e_buffer_write_pj
                + e_tables
                + e_joint;

            reads_per_pixel += (patch.size[1] * patch.size[2] * patch.size[3]) as u64;
            writes_per_pixel += patch.size[0] as u64;
        }

        Ok(LayerCosts {
            latency_ns: out_pixels as f64 * latency_per_pixel,
            energy_pj: out_pixels as f64 * energy_per_pixel,
            crossbars: mapping.crossbars,
            utilization: mapping.utilization,
            params: spec.shape().params(),
            rounds_per_pixel: rounds,
            buffer_writes: out_pixels as u64 * writes_per_pixel,
            buffer_reads: out_pixels as u64 * reads_per_pixel,
            out_pixels,
        })
    }
}

/// One-time cost of programming a layer's weights onto crossbars.
///
/// The paper's motivation in a number: "PIM accelerators typically require
/// loading all neural network weights onto memristor crossbars prior to
/// conducting computations", and writing is far slower than reading — so
/// the crossbar compression the epitome buys also shrinks deployment
/// (weight-loading) time and energy proportionally.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgrammingCosts {
    /// Write latency, ns. Cells in one physical row program together, so
    /// the latency is `rows-of-cells-to-write × t_cell_write`.
    pub latency_ns: f64,
    /// Write energy, pJ (every programmed cell pays the write energy).
    pub energy_pj: f64,
    /// Cells programmed.
    pub cells: usize,
}

impl CostModel {
    /// One-time programming cost of a convolution layer's weights.
    pub fn conv_programming(&self, conv: ConvShape, prec: Precision) -> ProgrammingCosts {
        let mapping = Mapping::new(MappedMatrix::from_conv(conv), self.cfg.crossbar, prec)
            .expect("valid conv mapping");
        self.programming(&mapping)
    }

    /// One-time programming cost of an epitome layer's weights.
    pub fn epitome_programming(&self, spec: &EpitomeSpec, prec: Precision) -> ProgrammingCosts {
        let mapping = Mapping::new(
            MappedMatrix::from_epitome(spec.shape()),
            self.cfg.crossbar,
            prec,
        )
        .expect("valid epitome mapping");
        self.programming(&mapping)
    }

    fn programming(&self, mapping: &Mapping) -> ProgrammingCosts {
        let cells = mapping.used_cells();
        // Row-parallel programming: one write pulse per occupied physical
        // row per crossbar; different crossbars program sequentially on a
        // shared write driver.
        let rows_to_write = mapping.matrix.rows.min(self.cfg.crossbar.rows) as f64
            * mapping.row_tiles as f64
            * mapping.col_tiles as f64;
        ProgrammingCosts {
            latency_ns: rows_to_write * self.lut.t_cell_write_ns,
            energy_pj: cells as f64 * self.lut.e_cell_write_pj,
            cells,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::new(AcceleratorConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epim_core::EpitomeDesigner;

    fn model(wrapping: bool) -> CostModel {
        CostModel::new(AcceleratorConfig::default().with_channel_wrapping(wrapping))
    }

    fn paper_spec() -> EpitomeSpec {
        EpitomeDesigner::new(128, 128)
            .design(ConvShape::new(512, 256, 3, 3), 1024, 256)
            .unwrap()
    }

    #[test]
    fn conv_costs_scale_with_pixels() {
        let m = model(false);
        let conv = ConvShape::new(128, 64, 3, 3);
        let a = m.conv_layer(conv, 100, Precision::new(9, 9));
        let b = m.conv_layer(conv, 200, Precision::new(9, 9));
        assert!((b.latency_ns / a.latency_ns - 2.0).abs() < 1e-9);
        assert!((b.energy_pj / a.energy_pj - 2.0).abs() < 1e-9);
        assert_eq!(b.crossbars, a.crossbars);
    }

    #[test]
    fn conv_latency_scales_with_act_bits() {
        let m = model(false);
        let conv = ConvShape::new(128, 64, 3, 3);
        let w9 = m.conv_layer(conv, 100, Precision::new(9, 9));
        let fp = m.conv_layer(conv, 100, Precision::fp32());
        assert!(fp.latency_ns > w9.latency_ns * 2.0);
        assert!(fp.crossbars > w9.crossbars);
    }

    #[test]
    fn epitome_uses_fewer_crossbars_but_more_rounds() {
        // The paper's §5.1 observation: compression cuts crossbars but
        // multiplies activation rounds, raising latency and energy.
        let m = model(false);
        let prec = Precision::new(9, 9);
        let conv = ConvShape::new(512, 256, 3, 3);
        let spec = paper_spec();
        let pixels = 14 * 14;
        let c = m.conv_layer(conv, pixels, prec);
        let e = m.epitome_layer(&spec, pixels, prec);
        assert!(
            e.crossbars < c.crossbars,
            "crossbars {} vs {}",
            e.crossbars,
            c.crossbars
        );
        assert!(e.rounds_per_pixel > 1);
        assert!(
            e.latency_ns > c.latency_ns,
            "epitome should be slower per §5.1"
        );
        assert!(
            e.buffer_writes > c.buffer_writes,
            "more partial writes per §5.1"
        );
    }

    #[test]
    fn channel_wrapping_reduces_rounds_and_writes() {
        let prec = Precision::new(9, 9);
        let spec = paper_spec();
        let wrap = epim_core::wrapping_factor(spec.plan());
        assert_eq!(wrap.factor, 2);
        let off = model(false).epitome_layer(&spec, 196, prec);
        let on = model(true).epitome_layer(&spec, 196, prec);
        assert_eq!(on.rounds_per_pixel * wrap.factor, off.rounds_per_pixel);
        assert_eq!(on.buffer_writes * wrap.factor as u64, off.buffer_writes);
        assert!(on.latency_ns < off.latency_ns);
        assert!(on.energy_pj < off.energy_pj);
        assert_eq!(
            on.crossbars, off.crossbars,
            "wrapping changes time, not storage"
        );
    }

    #[test]
    fn wrapping_noop_when_factor_one() {
        // Epitome with full cout: wrapping can't help.
        let spec = EpitomeDesigner::new(128, 128)
            .design(ConvShape::new(256, 256, 3, 3), 1024, 256)
            .unwrap();
        assert_eq!(epim_core::wrapping_factor(spec.plan()).factor, 1);
        let prec = Precision::new(9, 9);
        let off = model(false).epitome_layer(&spec, 10, prec);
        let on = model(true).epitome_layer(&spec, 10, prec);
        assert_eq!(off, on);
    }

    #[test]
    fn edp_is_product() {
        let c = model(false).conv_layer(ConvShape::new(64, 64, 3, 3), 49, Precision::default());
        assert!((c.edp() - c.latency_ns * c.energy_pj).abs() < 1e-6);
        assert!((c.latency_ms() - c.latency_ns * 1e-6).abs() < 1e-12);
        assert!((c.energy_mj() - c.energy_pj * 1e-9).abs() < 1e-12);
    }

    #[test]
    fn combine_accumulates() {
        let m = model(false);
        let a = m.conv_layer(ConvShape::new(64, 64, 3, 3), 49, Precision::default());
        let b = m.conv_layer(ConvShape::new(128, 64, 1, 1), 49, Precision::default());
        let s = a.combine(&b);
        assert_eq!(s.crossbars, a.crossbars + b.crossbars);
        assert!((s.latency_ns - (a.latency_ns + b.latency_ns)).abs() < 1e-9);
        assert!(s.utilization > 0.0 && s.utilization <= 1.0);
        assert_eq!(s.params, a.params + b.params);
    }

    #[test]
    fn lower_weight_bits_lower_energy() {
        let m = model(false);
        let spec = paper_spec();
        let w9 = m.epitome_layer(&spec, 196, Precision::new(9, 9));
        let w3 = m.epitome_layer(&spec, 196, Precision::new(3, 9));
        assert!(w3.energy_pj < w9.energy_pj);
        assert!(w3.crossbars < w9.crossbars);
    }

    #[test]
    fn latency_monotone_in_rounds() {
        // More compression (smaller epitome) -> more rounds -> more latency.
        let m = model(false);
        let prec = Precision::new(9, 9);
        let conv = ConvShape::new(512, 256, 3, 3);
        let d = EpitomeDesigner::new(128, 128);
        let big = d.design(conv, 2304, 512).unwrap();
        let small = d.design(conv, 1024, 128).unwrap();
        let cb = m.epitome_layer(&big, 196, prec);
        let cs = m.epitome_layer(&small, 196, prec);
        assert!(cs.rounds_per_pixel > cb.rounds_per_pixel);
        assert!(cs.latency_ns > cb.latency_ns);
    }

    #[test]
    fn programming_cost_shrinks_with_epitome() {
        // The motivation claim: compressed weights are also cheaper to
        // deploy (write) onto the crossbars.
        let m = model(false);
        let prec = Precision::new(9, 9);
        let conv = ConvShape::new(512, 256, 3, 3);
        let spec = paper_spec();
        let pc = m.conv_programming(conv, prec);
        let pe = m.epitome_programming(&spec, prec);
        assert!(pe.cells < pc.cells);
        assert!(pe.energy_pj < pc.energy_pj);
        assert!(pe.latency_ns < pc.latency_ns);
        // Ratio tracks the cell compression.
        let cell_ratio = pc.cells as f64 / pe.cells as f64;
        let energy_ratio = pc.energy_pj / pe.energy_pj;
        assert!((cell_ratio - energy_ratio).abs() < 1e-9);
    }

    #[test]
    fn programming_cost_scales_with_bits() {
        let m = model(false);
        let conv = ConvShape::new(128, 64, 3, 3);
        let w3 = m.conv_programming(conv, Precision::new(3, 9));
        let w9 = m.conv_programming(conv, Precision::new(9, 9));
        assert!(w9.cells > w3.cells);
        assert!(w9.latency_ns > w3.latency_ns);
    }

    #[test]
    fn try_variants_report_errors() {
        let m = model(false);
        let bad_prec = Precision {
            weight_bits: 0,
            act_bits: 9,
        };
        assert!(m
            .try_conv_layer(ConvShape::new(4, 4, 3, 3), 10, bad_prec)
            .is_err());
    }
}
