//! Whole-network cost aggregation.

use crate::LayerCosts;
use serde::{Deserialize, Serialize};

/// Aggregated simulation results for a whole network.
///
/// # Example
///
/// ```
/// use epim_pim::{CostModel, NetworkCosts, Precision};
/// use epim_core::ConvShape;
///
/// let m = CostModel::default();
/// let mut net = NetworkCosts::new("demo");
/// net.push("conv1", m.conv_layer(ConvShape::new(64, 3, 7, 7), 112 * 112, Precision::new(9, 9)));
/// net.push("conv2", m.conv_layer(ConvShape::new(64, 64, 3, 3), 56 * 56, Precision::new(9, 9)));
/// assert_eq!(net.layers().len(), 2);
/// assert!(net.total().latency_ns > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkCosts {
    name: String,
    layers: Vec<(String, LayerCosts)>,
}

impl NetworkCosts {
    /// Creates an empty network report.
    pub fn new(name: impl Into<String>) -> Self {
        NetworkCosts {
            name: name.into(),
            layers: Vec::new(),
        }
    }

    /// The network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a named layer's costs.
    pub fn push(&mut self, layer_name: impl Into<String>, costs: LayerCosts) {
        self.layers.push((layer_name.into(), costs));
    }

    /// The per-layer results.
    pub fn layers(&self) -> &[(String, LayerCosts)] {
        &self.layers
    }

    /// Finds a layer's costs by name.
    pub fn layer(&self, name: &str) -> Option<&LayerCosts> {
        self.layers.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }

    /// Sums all layers (utilization becomes crossbar-weighted average).
    pub fn total(&self) -> LayerCosts {
        let mut acc = LayerCosts {
            latency_ns: 0.0,
            energy_pj: 0.0,
            crossbars: 0,
            utilization: 0.0,
            params: 0,
            rounds_per_pixel: 0,
            buffer_writes: 0,
            buffer_reads: 0,
            out_pixels: 0,
        };
        for (_, c) in &self.layers {
            acc = acc.combine(c);
        }
        acc
    }

    /// Total latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.total().latency_ms()
    }

    /// Total energy in millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.total().energy_mj()
    }

    /// Total energy-delay product (mJ·ms).
    pub fn edp_mj_ms(&self) -> f64 {
        self.latency_ms() * self.energy_mj()
    }

    /// Total crossbars.
    pub fn crossbars(&self) -> usize {
        self.total().crossbars
    }

    /// Crossbar-weighted average memristor utilization, percent.
    pub fn utilization_pct(&self) -> f64 {
        self.total().utilization * 100.0
    }

    /// Total parameters stored on crossbars.
    pub fn params(&self) -> usize {
        self.total().params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostModel, Precision};
    use epim_core::ConvShape;

    fn demo_net() -> NetworkCosts {
        let m = CostModel::default();
        let p = Precision::new(9, 9);
        let mut n = NetworkCosts::new("demo");
        n.push("a", m.conv_layer(ConvShape::new(64, 3, 7, 7), 100, p));
        n.push("b", m.conv_layer(ConvShape::new(128, 64, 3, 3), 49, p));
        n
    }

    #[test]
    fn totals_sum_layers() {
        let n = demo_net();
        let t = n.total();
        let (a, b) = (n.layer("a").unwrap(), n.layer("b").unwrap());
        assert!((t.latency_ns - (a.latency_ns + b.latency_ns)).abs() < 1e-9);
        assert_eq!(t.crossbars, a.crossbars + b.crossbars);
        assert_eq!(t.params, a.params + b.params);
        assert!(t.utilization > 0.0 && t.utilization <= 1.0);
    }

    #[test]
    fn lookup_by_name() {
        let n = demo_net();
        assert!(n.layer("a").is_some());
        assert!(n.layer("zzz").is_none());
        assert_eq!(n.name(), "demo");
        assert_eq!(n.layers().len(), 2);
    }

    #[test]
    fn unit_conversions() {
        let n = demo_net();
        assert!((n.edp_mj_ms() - n.latency_ms() * n.energy_mj()).abs() < 1e-12);
        assert!(n.utilization_pct() <= 100.0);
    }

    #[test]
    fn empty_network_zero() {
        let n = NetworkCosts::new("empty");
        let t = n.total();
        assert_eq!(t.crossbars, 0);
        assert_eq!(t.latency_ns, 0.0);
        assert_eq!(n.utilization_pct(), 0.0);
    }
}
