//! Accelerator configuration.

use crate::PimError;
use serde::{Deserialize, Serialize};

/// Geometry of one memristor crossbar array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CrossbarConfig {
    /// Word lines (rows).
    pub rows: usize,
    /// Bit lines (columns).
    pub cols: usize,
    /// Bits stored per memristor cell. The paper uses "the well-explored
    /// 2-bit memristor cells" (§6.1).
    pub cell_bits: u8,
}

impl CrossbarConfig {
    /// Creates a crossbar configuration.
    pub fn new(rows: usize, cols: usize, cell_bits: u8) -> Self {
        CrossbarConfig {
            rows,
            cols,
            cell_bits,
        }
    }

    /// Cells per crossbar.
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::InvalidConfig`] for zero extents or zero cell
    /// bits.
    pub fn validate(&self) -> Result<(), PimError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(PimError::config("crossbar extents must be nonzero"));
        }
        if self.cell_bits == 0 {
            return Err(PimError::config("cell_bits must be nonzero"));
        }
        Ok(())
    }
}

impl Default for CrossbarConfig {
    fn default() -> Self {
        // 128x128 with 2-bit cells: the paper's evaluation setting.
        CrossbarConfig::new(128, 128, 2)
    }
}

/// Numeric precision of one layer: weight and activation bit widths.
///
/// `Precision::new(9, 9)` corresponds to the paper's `W9A9` rows;
/// FP32 baselines use [`Precision::fp32`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Precision {
    /// Weight bits.
    pub weight_bits: u8,
    /// Activation bits (input streaming is bit-serial, so latency scales
    /// with this).
    pub act_bits: u8,
}

impl Precision {
    /// Creates a precision setting.
    pub fn new(weight_bits: u8, act_bits: u8) -> Self {
        Precision {
            weight_bits,
            act_bits,
        }
    }

    /// 32-bit fixed-point emulation of the FP32 baseline rows.
    pub fn fp32() -> Self {
        Precision::new(32, 32)
    }

    /// Validates the precision.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::InvalidConfig`] for zero bit widths.
    pub fn validate(&self) -> Result<(), PimError> {
        if self.weight_bits == 0 || self.act_bits == 0 {
            return Err(PimError::config("bit widths must be nonzero"));
        }
        Ok(())
    }
}

impl Default for Precision {
    fn default() -> Self {
        Precision::new(9, 9)
    }
}

/// Whole-accelerator configuration: crossbar geometry plus data-path
/// options.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Crossbar geometry.
    pub crossbar: CrossbarConfig,
    /// Whether output channel wrapping is enabled (paper §5.3).
    pub channel_wrapping: bool,
}

impl AcceleratorConfig {
    /// Creates a configuration with wrapping disabled.
    pub fn new(crossbar: CrossbarConfig) -> Self {
        AcceleratorConfig {
            crossbar,
            channel_wrapping: false,
        }
    }

    /// Enables/disables output channel wrapping (builder style).
    pub fn with_channel_wrapping(mut self, on: bool) -> Self {
        self.channel_wrapping = on;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::InvalidConfig`] if the crossbar geometry is
    /// invalid.
    pub fn validate(&self) -> Result<(), PimError> {
        self.crossbar.validate()
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        AcceleratorConfig::new(CrossbarConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setting() {
        let c = CrossbarConfig::default();
        assert_eq!((c.rows, c.cols, c.cell_bits), (128, 128, 2));
        assert_eq!(c.cells(), 16384);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_zero() {
        assert!(CrossbarConfig::new(0, 128, 2).validate().is_err());
        assert!(CrossbarConfig::new(128, 0, 2).validate().is_err());
        assert!(CrossbarConfig::new(128, 128, 0).validate().is_err());
        assert!(Precision::new(0, 9).validate().is_err());
        assert!(Precision::new(9, 0).validate().is_err());
    }

    #[test]
    fn accelerator_builder() {
        let a = AcceleratorConfig::default().with_channel_wrapping(true);
        assert!(a.channel_wrapping);
        assert!(a.validate().is_ok());
    }

    #[test]
    fn fp32_precision() {
        let p = Precision::fp32();
        assert_eq!((p.weight_bits, p.act_bits), (32, 32));
    }
}
