//! SIMD epilogue for the data path's DAC/ADC quantization sweeps.
//!
//! Both converters quantize the same way: divide by the step, round to the
//! nearest level (ties away from zero, i.e. [`f32::round`]), clamp to the
//! converter's range, multiply back. The per-round sweeps over gathered
//! inputs and bit-line partial sums are hot enough in the batched data path
//! to deserve vector code, so [`quantize_slice`] is written once as a
//! generic [`SimdOp`] body and monomorphized per ISA (AVX-512F, AVX2+FMA,
//! scalar) by the shared `epim-simd` dispatcher.
//!
//! **Bit-exactness.** The data-path equivalence tests compare the batched,
//! per-pixel and seed-reference execution paths bit-for-bit, so every arm
//! must reproduce `f32::round` exactly. SIMD rounding instructions round
//! ties to even, and the folklore `trunc(x + 0.5)` trick is wrong near
//! halves (e.g. `x = 0.49999997`: `x + 0.5` rounds up to `1.0`), so the
//! kernel rounds via exact float steps instead: `r = trunc(|t|)` and
//! `f = |t| - r` are both exact (Sterbenz), `f >= 0.5` decides the
//! increment, and the sign is restored bitwise. Inputs are assumed finite
//! (NaN propagation differs between `clamp` and SIMD min/max); the data
//! path only produces finite values.

use epim_simd::{dispatch, Simd, SimdOp};

/// Quantizes one value: `round(v / step)` clamped to `[-limit, limit]`
/// levels, times `step`. The scalar ground truth for the vector kernels.
#[inline]
pub fn quantize_value(v: f32, step: f32, limit: f32) -> f32 {
    (v / step).round().clamp(-limit, limit) * step
}

/// Quantizes every element of `vals` in place (DAC/ADC sweep), bit-exactly
/// matching [`quantize_value`] per element in every ISA arm.
pub fn quantize_slice(vals: &mut [f32], step: f32, limit: f32) {
    dispatch(QuantizeOp { vals, step, limit });
}

struct QuantizeOp<'a> {
    vals: &'a mut [f32],
    step: f32,
    limit: f32,
}

impl SimdOp for QuantizeOp<'_> {
    type Output = ();
    #[inline(always)]
    fn eval<S: Simd>(self, s: S) {
        let n = self.vals.len();
        let ptr = self.vals.as_mut_ptr();
        let vstep = s.splat(self.step);
        let vhalf = s.splat(0.5);
        let vone = s.splat(1.0);
        let vlim = s.splat(self.limit);
        let vneg = s.splat(-self.limit);
        let mut i = 0;
        // SAFETY: i + LANES <= n on every vector iteration.
        unsafe {
            while i + S::LANES <= n {
                let t = s.div(s.load(ptr.add(i)), vstep);
                let sign = s.sign_bits(t);
                let a = s.abs(t);
                let r = s.trunc(a);
                // |t| - trunc(|t|) is exact, so the ties-away decision is too.
                let frac = s.sub(a, r);
                let r = s.select(s.ge(frac, vhalf), s.add(r, vone), r);
                let r = s.or_bits(r, sign);
                let r = s.min(s.max(r, vneg), vlim);
                s.store(ptr.add(i), s.mul(r, vstep));
                i += S::LANES;
            }
        }
        while i < n {
            self.vals[i] = quantize_value(self.vals[i], self.step, self.limit);
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epim_simd::{dispatch_on, CpuFeatures};

    /// Values chosen to break naive rounding emulations: just-below-half
    /// fractions (where `trunc(x + 0.5)` rounds up incorrectly), exact
    /// halves (ties away from zero vs the hardware's ties to even), the
    /// 2^23 integer boundary, signed zeros and clamp edges.
    fn adversarial_values() -> Vec<f32> {
        let mut vals = vec![
            0.0,
            -0.0,
            0.49999997,
            -0.49999997,
            0.5,
            -0.5,
            1.5,
            -1.5,
            2.5,
            -2.5,
            8388607.5,
            8388608.0,
            8388609.0,
            16777216.0,
            -16777216.0,
            1.0e30,
            -1.0e30,
            3.3333333,
            -7.7777777,
            f32::MIN_POSITIVE,
        ];
        // A dense sweep of small magnitudes to cover every frac pattern.
        for i in -2000i32..=2000 {
            vals.push(i as f32 * 0.01);
        }
        vals
    }

    #[test]
    fn slice_matches_scalar_bitwise() {
        for &(step, limit) in &[
            (0.125f32, 128.0f32),
            (0.0033, 256.0),
            (1.0, 4.0),
            (2.5, 8.0),
        ] {
            let mut vals = adversarial_values();
            let want: Vec<f32> = vals
                .iter()
                .map(|&v| quantize_value(v, step, limit))
                .collect();
            quantize_slice(&mut vals, step, limit);
            for (i, (&got, &want)) in vals.iter().zip(&want).enumerate() {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "element {i}: got {got}, want {want} (step {step}, limit {limit})"
                );
            }
        }
    }

    /// Exercises every ISA arm the CPU supports via the dispatcher's
    /// force hook, regardless of which one `quantize_slice` picks.
    #[test]
    fn every_available_arm_matches_scalar_bitwise() {
        let (step, limit) = (0.0625f32, 512.0f32);
        let reference: Vec<f32> = adversarial_values()
            .iter()
            .map(|&v| quantize_value(v, step, limit))
            .collect();
        for isa in CpuFeatures::get().available() {
            let mut vals = adversarial_values();
            dispatch_on(
                isa,
                QuantizeOp {
                    vals: &mut vals,
                    step,
                    limit,
                },
            );
            for (i, (got, want)) in vals.iter().zip(&reference).enumerate() {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "{isa:?} elem {i}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn rounds_ties_away_from_zero() {
        // step 1, generous clamp: quantization is plain round().
        let mut vals = vec![0.5, 1.5, 2.5, -0.5, -1.5, -2.5];
        quantize_slice(&mut vals, 1.0, 1.0e9);
        assert_eq!(vals, vec![1.0, 2.0, 3.0, -1.0, -2.0, -3.0]);
    }

    #[test]
    fn clamps_to_limit() {
        let mut vals = vec![1.0e9, -1.0e9];
        quantize_slice(&mut vals, 1.0, 7.0);
        assert_eq!(vals, vec![7.0, -7.0]);
    }

    #[test]
    fn short_slices_hit_the_scalar_tail() {
        for len in 0..24 {
            let mut vals: Vec<f32> = (0..len).map(|i| i as f32 * 0.37 - 2.0).collect();
            let want: Vec<f32> = vals
                .iter()
                .map(|&v| quantize_value(v, 0.25, 16.0))
                .collect();
            quantize_slice(&mut vals, 0.25, 16.0);
            assert_eq!(vals, want);
        }
    }
}
