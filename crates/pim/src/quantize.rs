//! SIMD epilogue for the data path's DAC/ADC quantization sweeps.
//!
//! Both converters quantize the same way: divide by the step, round to the
//! nearest level (ties away from zero, i.e. [`f32::round`]), clamp to the
//! converter's range, multiply back. The per-round sweeps over gathered
//! inputs and bit-line partial sums are hot enough in the batched data path
//! to deserve vector code, so [`quantize_slice`] dispatches at runtime to
//! an AVX-512F, AVX2 or scalar kernel — the same pattern as the GEMM
//! micro-kernels in `epim_tensor::ops::gemm`.
//!
//! **Bit-exactness.** The data-path equivalence tests compare the batched,
//! per-pixel and seed-reference execution paths bit-for-bit, so the vector
//! kernels must reproduce `f32::round` exactly. SIMD rounding instructions
//! round ties to even, and the folklore `trunc(x + 0.5)` trick is wrong
//! near halves (e.g. `x = 0.49999997`: `x + 0.5` rounds up to `1.0`), so
//! the kernels round via exact float steps instead: `r = trunc(|t|)` and
//! `f = |t| - r` are both exact (Sterbenz), `f >= 0.5` decides the
//! increment, and the sign is restored bitwise. Inputs are assumed finite
//! (NaN propagation differs between `clamp` and SIMD min/max); the data
//! path only produces finite values.

/// Quantizes one value: `round(v / step)` clamped to `[-limit, limit]`
/// levels, times `step`. The scalar ground truth for the vector kernels.
#[inline]
pub fn quantize_value(v: f32, step: f32, limit: f32) -> f32 {
    (v / step).round().clamp(-limit, limit) * step
}

/// Instruction-set variant for the quantization sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// 16-wide AVX-512F.
    Avx512,
    /// 8-wide AVX2.
    Avx2,
    /// One lane at a time, autovectorizer permitting.
    Scalar,
}

/// Detects the best available kernel once per process.
fn kind() -> Kind {
    static KIND: std::sync::OnceLock<Kind> = std::sync::OnceLock::new();
    *KIND.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") {
                return Kind::Avx512;
            }
            if is_x86_feature_detected!("avx2") {
                return Kind::Avx2;
            }
        }
        Kind::Scalar
    })
}

/// Quantizes every element of `vals` in place (DAC/ADC sweep), bit-exactly
/// matching [`quantize_value`] per element.
pub fn quantize_slice(vals: &mut [f32], step: f32, limit: f32) {
    match kind() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `kind()` verified the avx512f feature at runtime.
        Kind::Avx512 => unsafe { quantize_avx512(vals, step, limit) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `kind()` verified the avx2 feature at runtime.
        Kind::Avx2 => unsafe { quantize_avx2(vals, step, limit) },
        #[cfg(not(target_arch = "x86_64"))]
        Kind::Avx512 | Kind::Avx2 => quantize_scalar(vals, step, limit),
        Kind::Scalar => quantize_scalar(vals, step, limit),
    }
}

fn quantize_scalar(vals: &mut [f32], step: f32, limit: f32) {
    for v in vals {
        *v = quantize_value(*v, step, limit);
    }
}

/// 8-wide AVX2 sweep.
///
/// # Safety
///
/// Caller must verify the `avx2` feature is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_avx2(vals: &mut [f32], step: f32, limit: f32) {
    use std::arch::x86_64::*;
    let n = vals.len();
    let ptr = vals.as_mut_ptr();
    let vstep = _mm256_set1_ps(step);
    let vhalf = _mm256_set1_ps(0.5);
    let vone = _mm256_set1_ps(1.0);
    let vlim = _mm256_set1_ps(limit);
    let vneg = _mm256_set1_ps(-limit);
    let sign_mask = _mm256_set1_ps(-0.0);
    let mut i = 0;
    while i + 8 <= n {
        let t = _mm256_div_ps(_mm256_loadu_ps(ptr.add(i)), vstep);
        let sign = _mm256_and_ps(t, sign_mask);
        let a = _mm256_andnot_ps(sign_mask, t);
        let r = _mm256_round_ps::<{ _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC }>(a);
        // |t| - trunc(|t|) is exact, so the ties-away decision is too.
        let frac = _mm256_sub_ps(a, r);
        let bump = _mm256_and_ps(_mm256_cmp_ps::<_CMP_GE_OQ>(frac, vhalf), vone);
        let r = _mm256_or_ps(_mm256_add_ps(r, bump), sign);
        let r = _mm256_min_ps(_mm256_max_ps(r, vneg), vlim);
        _mm256_storeu_ps(ptr.add(i), _mm256_mul_ps(r, vstep));
        i += 8;
    }
    quantize_scalar(&mut vals[i..], step, limit);
}

/// 16-wide AVX-512F sweep. Bitwise float ops go through the integer domain
/// (`or_ps`/`and_ps` would need AVX-512DQ).
///
/// # Safety
///
/// Caller must verify the `avx512f` feature is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn quantize_avx512(vals: &mut [f32], step: f32, limit: f32) {
    use std::arch::x86_64::*;
    let n = vals.len();
    let ptr = vals.as_mut_ptr();
    let vstep = _mm512_set1_ps(step);
    let vhalf = _mm512_set1_ps(0.5);
    let vone = _mm512_set1_ps(1.0);
    let vlim = _mm512_set1_ps(limit);
    let vneg = _mm512_set1_ps(-limit);
    let sign_bits = _mm512_set1_epi32(i32::MIN);
    let mut i = 0;
    while i + 16 <= n {
        let t = _mm512_div_ps(_mm512_loadu_ps(ptr.add(i)), vstep);
        let ti = _mm512_castps_si512(t);
        let sign = _mm512_and_si512(ti, sign_bits);
        let a = _mm512_castsi512_ps(_mm512_andnot_si512(sign_bits, ti));
        let r = _mm512_roundscale_ps::<{ _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC }>(a);
        let frac = _mm512_sub_ps(a, r);
        let m = _mm512_cmp_ps_mask::<_CMP_GE_OQ>(frac, vhalf);
        let r = _mm512_mask_add_ps(r, m, r, vone);
        let r = _mm512_castsi512_ps(_mm512_or_si512(_mm512_castps_si512(r), sign));
        let r = _mm512_min_ps(_mm512_max_ps(r, vneg), vlim);
        _mm512_storeu_ps(ptr.add(i), _mm512_mul_ps(r, vstep));
        i += 16;
    }
    quantize_scalar(&mut vals[i..], step, limit);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Values chosen to break naive rounding emulations: just-below-half
    /// fractions (where `trunc(x + 0.5)` rounds up incorrectly), exact
    /// halves (ties away from zero vs the hardware's ties to even), the
    /// 2^23 integer boundary, signed zeros and clamp edges.
    fn adversarial_values() -> Vec<f32> {
        let mut vals = vec![
            0.0,
            -0.0,
            0.49999997,
            -0.49999997,
            0.5,
            -0.5,
            1.5,
            -1.5,
            2.5,
            -2.5,
            8388607.5,
            8388608.0,
            8388609.0,
            16777216.0,
            -16777216.0,
            1.0e30,
            -1.0e30,
            3.3333333,
            -7.7777777,
            f32::MIN_POSITIVE,
        ];
        // A dense sweep of small magnitudes to cover every frac pattern.
        for i in -2000i32..=2000 {
            vals.push(i as f32 * 0.01);
        }
        vals
    }

    #[test]
    fn slice_matches_scalar_bitwise() {
        for &(step, limit) in &[
            (0.125f32, 128.0f32),
            (0.0033, 256.0),
            (1.0, 4.0),
            (2.5, 8.0),
        ] {
            let mut vals = adversarial_values();
            let want: Vec<f32> = vals
                .iter()
                .map(|&v| quantize_value(v, step, limit))
                .collect();
            quantize_slice(&mut vals, step, limit);
            for (i, (&got, &want)) in vals.iter().zip(&want).enumerate() {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "element {i}: got {got}, want {want} (step {step}, limit {limit})"
                );
            }
        }
    }

    /// Exercises each vector kernel the CPU supports directly, regardless
    /// of which one `quantize_slice` dispatches to.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn every_available_kernel_matches_scalar_bitwise() {
        let (step, limit) = (0.0625f32, 512.0f32);
        let reference: Vec<f32> = adversarial_values()
            .iter()
            .map(|&v| quantize_value(v, step, limit))
            .collect();
        if is_x86_feature_detected!("avx2") {
            let mut vals = adversarial_values();
            // SAFETY: feature checked on the line above.
            unsafe { quantize_avx2(&mut vals, step, limit) };
            for (got, want) in vals.iter().zip(&reference) {
                assert_eq!(got.to_bits(), want.to_bits(), "avx2: {got} vs {want}");
            }
        }
        if is_x86_feature_detected!("avx512f") {
            let mut vals = adversarial_values();
            // SAFETY: feature checked on the line above.
            unsafe { quantize_avx512(&mut vals, step, limit) };
            for (got, want) in vals.iter().zip(&reference) {
                assert_eq!(got.to_bits(), want.to_bits(), "avx512: {got} vs {want}");
            }
        }
    }

    #[test]
    fn rounds_ties_away_from_zero() {
        // step 1, generous clamp: quantization is plain round().
        let mut vals = vec![0.5, 1.5, 2.5, -0.5, -1.5, -2.5];
        quantize_slice(&mut vals, 1.0, 1.0e9);
        assert_eq!(vals, vec![1.0, 2.0, 3.0, -1.0, -2.0, -3.0]);
    }

    #[test]
    fn clamps_to_limit() {
        let mut vals = vec![1.0e9, -1.0e9];
        quantize_slice(&mut vals, 1.0, 7.0);
        assert_eq!(vals, vec![7.0, -7.0]);
    }

    #[test]
    fn short_slices_hit_the_scalar_tail() {
        for len in 0..24 {
            let mut vals: Vec<f32> = (0..len).map(|i| i as f32 * 0.37 - 2.0).collect();
            let want: Vec<f32> = vals
                .iter()
                .map(|&v| quantize_value(v, 0.25, 16.0))
                .collect();
            quantize_slice(&mut vals, 0.25, 16.0);
            assert_eq!(vals, want);
        }
    }
}
