//! Weight-matrix to crossbar mapping.
//!
//! Follows the mapping of MNSIM / the paper's §4.1: the `c_in × kh × kw`
//! dimension goes to word lines, `c_out` to bit lines, and each weight is
//! bit-sliced across `ceil(weight_bits / cell_bits)` adjacent columns.

use crate::{CrossbarConfig, PimError, Precision};
use epim_core::MappedMatrix;
use serde::{Deserialize, Serialize};

/// Result of mapping one weight matrix onto crossbars.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    /// The logical matrix (before bit slicing).
    pub matrix: MappedMatrix,
    /// Bit slices per weight.
    pub slices: usize,
    /// Crossbar tiles along the row (word-line) dimension.
    pub row_tiles: usize,
    /// Crossbar tiles along the sliced column (bit-line) dimension.
    pub col_tiles: usize,
    /// Total crossbars allocated.
    pub crossbars: usize,
    /// Fraction of allocated cells actually holding weights, in `(0, 1]`.
    pub utilization: f64,
}

impl Mapping {
    /// Maps `matrix` onto crossbars of geometry `xbar` at `precision`.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::InvalidConfig`] for invalid geometry/precision
    /// and [`PimError::GeometryMismatch`] for an empty matrix.
    pub fn new(
        matrix: MappedMatrix,
        xbar: CrossbarConfig,
        precision: Precision,
    ) -> Result<Self, PimError> {
        xbar.validate()?;
        precision.validate()?;
        if matrix.rows == 0 || matrix.cols == 0 {
            return Err(PimError::geometry("cannot map an empty matrix"));
        }
        let slices = (precision.weight_bits as usize).div_ceil(xbar.cell_bits as usize);
        let sliced_cols = matrix.cols * slices;
        let row_tiles = matrix.rows.div_ceil(xbar.rows);
        let col_tiles = sliced_cols.div_ceil(xbar.cols);
        let crossbars = row_tiles * col_tiles;
        let used = matrix.rows * sliced_cols;
        let utilization = used as f64 / (crossbars * xbar.cells()) as f64;
        Ok(Mapping {
            matrix,
            slices,
            row_tiles,
            col_tiles,
            crossbars,
            utilization,
        })
    }

    /// Physical cells used by the weights (rows × sliced columns).
    pub fn used_cells(&self) -> usize {
        self.matrix.rows * self.matrix.cols * self.slices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xb() -> CrossbarConfig {
        CrossbarConfig::default() // 128x128, 2-bit cells
    }

    #[test]
    fn exact_fit_full_utilization() {
        // 1024x256 epitome at W8 (4 slices): 1024 rows = 8 tiles,
        // 256*4 = 1024 cols = 8 tiles; utilization 1.0.
        let m = Mapping::new(MappedMatrix::new(1024, 256), xb(), Precision::new(8, 8)).unwrap();
        assert_eq!(m.slices, 4);
        assert_eq!(m.row_tiles, 8);
        assert_eq!(m.col_tiles, 8);
        assert_eq!(m.crossbars, 64);
        assert!((m.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn odd_bits_round_up_slices() {
        // W9 with 2-bit cells -> 5 slices (paper's W9A9 rows).
        let m = Mapping::new(MappedMatrix::new(128, 128), xb(), Precision::new(9, 9)).unwrap();
        assert_eq!(m.slices, 5);
        assert_eq!(m.col_tiles, 5);
        assert_eq!(m.crossbars, 5);
    }

    #[test]
    fn w3_uses_fewer_crossbars_than_w9() {
        let mat = MappedMatrix::new(2304, 512);
        let w9 = Mapping::new(mat, xb(), Precision::new(9, 9)).unwrap();
        let w3 = Mapping::new(mat, xb(), Precision::new(3, 9)).unwrap();
        assert!(w3.crossbars < w9.crossbars);
        assert_eq!(w3.slices, 2);
    }

    #[test]
    fn ragged_matrix_underutilizes() {
        let m = Mapping::new(MappedMatrix::new(129, 1), xb(), Precision::new(2, 2)).unwrap();
        assert_eq!(m.row_tiles, 2);
        assert_eq!(m.col_tiles, 1);
        assert!(m.utilization < 0.01);
        assert!(m.utilization > 0.0);
    }

    #[test]
    fn utilization_bounded() {
        for (r, c) in [(1, 1), (128, 128), (100, 333), (4096, 4096)] {
            let m = Mapping::new(MappedMatrix::new(r, c), xb(), Precision::new(9, 9)).unwrap();
            assert!(m.utilization > 0.0 && m.utilization <= 1.0);
            assert_eq!(m.crossbars, m.row_tiles * m.col_tiles);
        }
    }

    #[test]
    fn empty_matrix_rejected() {
        assert!(Mapping::new(MappedMatrix::new(0, 4), xb(), Precision::default()).is_err());
        assert!(Mapping::new(MappedMatrix::new(4, 0), xb(), Precision::default()).is_err());
    }

    #[test]
    fn epitome_never_more_crossbars_than_conv() {
        // DESIGN.md invariant: epitome mapping uses no more crossbars than
        // the conv it replaces.
        use epim_core::{ConvShape, EpitomeDesigner};
        let conv = ConvShape::new(512, 256, 3, 3);
        let d = EpitomeDesigner::new(128, 128);
        let spec = d.design(conv, 1024, 256).unwrap();
        let p = Precision::new(9, 9);
        let mc = Mapping::new(MappedMatrix::from_conv(conv), xb(), p).unwrap();
        let me = Mapping::new(MappedMatrix::from_epitome(spec.shape()), xb(), p).unwrap();
        assert!(me.crossbars < mc.crossbars);
    }
}
