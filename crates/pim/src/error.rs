use std::error::Error;
use std::fmt;

use epim_core::EpitomeError;
use epim_tensor::TensorError;

/// Error type for the PIM simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PimError {
    /// A configuration value was invalid (zero crossbar extent, zero bits).
    InvalidConfig {
        /// What was wrong.
        what: String,
    },
    /// A simulation input did not match the configured geometry.
    GeometryMismatch {
        /// What was wrong.
        what: String,
    },
    /// Error from the epitome layer.
    Epitome(EpitomeError),
    /// Error from the tensor layer.
    Tensor(TensorError),
}

impl fmt::Display for PimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PimError::InvalidConfig { what } => write!(f, "invalid PIM configuration: {what}"),
            PimError::GeometryMismatch { what } => write!(f, "geometry mismatch: {what}"),
            PimError::Epitome(e) => write!(f, "epitome error: {e}"),
            PimError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl Error for PimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PimError::Epitome(e) => Some(e),
            PimError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EpitomeError> for PimError {
    fn from(e: EpitomeError) -> Self {
        PimError::Epitome(e)
    }
}

impl From<TensorError> for PimError {
    fn from(e: TensorError) -> Self {
        PimError::Tensor(e)
    }
}

impl PimError {
    /// Convenience constructor for [`PimError::InvalidConfig`].
    pub fn config(what: impl Into<String>) -> Self {
        PimError::InvalidConfig { what: what.into() }
    }

    /// Convenience constructor for [`PimError::GeometryMismatch`].
    pub fn geometry(what: impl Into<String>) -> Self {
        PimError::GeometryMismatch { what: what.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = PimError::config("bad");
        assert!(e.to_string().contains("bad"));
        assert!(e.source().is_none());
        let e: PimError = TensorError::invalid("x").into();
        assert!(e.source().is_some());
        let e: PimError = EpitomeError::geometry("y").into();
        assert!(e.source().is_some());
    }
}
