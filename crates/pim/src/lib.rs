//! # epim-pim
//!
//! A behavior-level memristor-crossbar Processing-In-Memory simulator in the
//! style of MNSIM 2.0, extended with the epitome data path of the EPIM paper
//! (DAC 2024, §4.3 and Figure 2b).
//!
//! The simulator has two faces:
//!
//! 1. **Functional** ([`datapath`]): the modified data path — Input Feature
//!    Address Table ([`datapath::Ifat`]), Input Feature Row Table
//!    ([`datapath::Ifrt`]), Output Feature Address Table
//!    ([`datapath::Ofat`]) and the joint module — executed element-by-
//!    element so that an epitome layer running "on the crossbars" can be
//!    checked bit-for-bit against a plain convolution with the
//!    reconstructed weight.
//! 2. **Analytic** ([`cost`]): a lookup-table cost model (latency, energy,
//!    crossbar count, memristor utilization) for whole layers and networks,
//!    following the paper's statement that the simulator "maintains a
//!    look-up table for the storage of the latency and power parameters
//!    associated with basic hardware behaviors."
//!
//! ## Example
//!
//! ```
//! use epim_pim::{AcceleratorConfig, CostModel, Precision};
//! use epim_core::ConvShape;
//!
//! let cfg = AcceleratorConfig::default(); // 128x128 crossbars, 2-bit cells
//! let model = CostModel::new(cfg);
//! let conv = ConvShape::new(512, 256, 3, 3);
//! let costs = model.conv_layer(conv, 14 * 14, Precision::new(9, 9));
//! assert!(costs.latency_ns > 0.0);
//! assert!(costs.crossbars > 0);
//! ```

#![deny(missing_docs)]

mod config;
mod cost;
pub mod datapath;
mod error;
mod lut;
mod mapping;
mod network;
pub mod quantize;

pub use config::{AcceleratorConfig, CrossbarConfig, Precision};
pub use cost::{CostModel, LayerCosts, ProgrammingCosts};
pub use error::PimError;
pub use lut::HardwareLut;
pub use mapping::Mapping;
pub use network::NetworkCosts;
