//! The hardware behavior lookup table.
//!
//! MNSIM-style behavior-level modeling: every basic hardware behavior has a
//! latency and an energy entry; layer costs are sums of behavior counts
//! weighted by these entries. Default values are drawn from the public
//! ISAAC / PRIME / MNSIM literature for a 32 nm-class RRAM design:
//!
//! | behavior | latency | energy | source (order of magnitude) |
//! |---|---|---|---|
//! | crossbar read (one activation round) | 100 ns | — | ISAAC 100 ns read |
//! | cell compute | — | 0.002 pJ/cell | RRAM MAC ≈ 1–10 fJ |
//! | DAC drive | 1 ns/row (pipelined) | 0.004 pJ/row | ISAAC 1-bit DAC |
//! | ADC sample | 1 ns/col (pipelined) | 2 pJ/col | 8-bit SAR ADC ≈ 2 pJ/s. |
//! | shift & add | 20 ns/slice (serial merge) | 0.05 pJ/col | digital adder |
//! | buffer read/write | 0.1 ns/elem | 1 pJ/elem (write 1.5×) | eDRAM/SRAM |
//! | index table lookup | 0 (off critical path, §4.3) | 0.1 pJ/entry | small SRAM |
//! | joint-module add | 0 (pipelined) | 0.05 pJ/elem | digital adder |
//!
//! Absolute numbers matter less than ratios: the EPIM paper's claims are
//! about *shapes* (who wins, by what factor), and the
//! [`HardwareLut::calibrated`] preset scales these values so the FP32
//! ResNet-50 baseline lands near the paper's 139.8 ms / 214.0 mJ row.

use serde::{Deserialize, Serialize};

/// Per-behavior latency (ns) and energy (pJ) entries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareLut {
    /// Latency of one crossbar activation round, ns (read + sense).
    pub t_xbar_round_ns: f64,
    /// Pipelined DAC latency per active row, ns.
    pub t_dac_row_ns: f64,
    /// Pipelined ADC latency per active column, ns.
    pub t_adc_col_ns: f64,
    /// Buffer access latency per element, ns.
    pub t_buffer_elem_ns: f64,
    /// Shift-and-add merge latency per weight bit-slice per round, ns.
    /// Slices are merged serially, which is why lower weight precision
    /// shortens rounds (Table 1's latency trend across W9..W3).
    pub t_shift_add_slice_ns: f64,
    /// Memristor cell programming (write) latency, ns per cell. Writing
    /// is far slower than reading (the paper's motivation: "the writing
    /// latency of the memristor crossbar cell is multiple times larger
    /// than the reading latency"); cells in one row program together, so
    /// layer programming latency scales with rows x slices.
    pub t_cell_write_ns: f64,

    /// Energy per active cell per activation round, pJ.
    pub e_cell_pj: f64,
    /// DAC energy per active row per round, pJ.
    pub e_dac_row_pj: f64,
    /// ADC energy per active column per round, pJ.
    pub e_adc_col_pj: f64,
    /// Shift-and-add energy per active column per round, pJ.
    pub e_shift_add_pj: f64,
    /// Buffer read energy per element, pJ.
    pub e_buffer_read_pj: f64,
    /// Buffer write energy per element, pJ.
    pub e_buffer_write_pj: f64,
    /// Index-table (IFAT/IFRT/OFAT) lookup energy per entry, pJ.
    pub e_index_lookup_pj: f64,
    /// Joint-module add energy per output element, pJ.
    pub e_joint_add_pj: f64,
    /// Memristor cell programming (write) energy, pJ per cell.
    pub e_cell_write_pj: f64,
}

impl HardwareLut {
    /// Literature-derived default entries (see module docs).
    pub fn literature() -> Self {
        HardwareLut {
            t_xbar_round_ns: 100.0,
            t_dac_row_ns: 1.0 / 128.0, // pipelined across a 128-row tile
            t_adc_col_ns: 1.0 / 128.0,
            t_buffer_elem_ns: 0.1,
            t_shift_add_slice_ns: 20.0,
            t_cell_write_ns: 1000.0, // ~10x the read round, RRAM set/reset
            e_cell_pj: 0.002,
            e_dac_row_pj: 0.004,
            e_adc_col_pj: 2.0,
            e_shift_add_pj: 0.05,
            e_buffer_read_pj: 1.0,
            e_buffer_write_pj: 1.5,
            e_index_lookup_pj: 0.1,
            e_joint_add_pj: 0.05,
            e_cell_write_pj: 10.0, // RRAM set/reset ~1-100 pJ
        }
    }

    /// Entries scaled so that the FP32 ResNet-50 baseline of the cost
    /// model lands near the paper's Table 1 row (139.8 ms, 214.0 mJ).
    ///
    /// The scale factors were fitted once against the ResNet-50 layer
    /// inventory in `epim-models` and are kept as explicit constants so the
    /// calibration is reproducible and auditable.
    pub fn calibrated() -> Self {
        // Fitted by `cargo run -p epim-bench --bin calibrate`: latency
        // scale 0.1769, energy scale 5.5572 against the literature
        // entries (see EXPERIMENTS.md, "Calibration").
        Self::literature().scaled(0.1769, 5.5572)
    }

    /// Returns a copy with all latency entries multiplied by
    /// `latency_scale` and all energy entries by `energy_scale`.
    pub fn scaled(&self, latency_scale: f64, energy_scale: f64) -> Self {
        HardwareLut {
            t_xbar_round_ns: self.t_xbar_round_ns * latency_scale,
            t_dac_row_ns: self.t_dac_row_ns * latency_scale,
            t_adc_col_ns: self.t_adc_col_ns * latency_scale,
            t_buffer_elem_ns: self.t_buffer_elem_ns * latency_scale,
            t_shift_add_slice_ns: self.t_shift_add_slice_ns * latency_scale,
            t_cell_write_ns: self.t_cell_write_ns * latency_scale,
            e_cell_pj: self.e_cell_pj * energy_scale,
            e_dac_row_pj: self.e_dac_row_pj * energy_scale,
            e_adc_col_pj: self.e_adc_col_pj * energy_scale,
            e_shift_add_pj: self.e_shift_add_pj * energy_scale,
            e_buffer_read_pj: self.e_buffer_read_pj * energy_scale,
            e_buffer_write_pj: self.e_buffer_write_pj * energy_scale,
            e_index_lookup_pj: self.e_index_lookup_pj * energy_scale,
            e_joint_add_pj: self.e_joint_add_pj * energy_scale,
            e_cell_write_pj: self.e_cell_write_pj * energy_scale,
        }
    }

    /// Whether every entry is finite and non-negative.
    pub fn is_sane(&self) -> bool {
        [
            self.t_xbar_round_ns,
            self.t_dac_row_ns,
            self.t_adc_col_ns,
            self.t_buffer_elem_ns,
            self.t_shift_add_slice_ns,
            self.t_cell_write_ns,
            self.e_cell_pj,
            self.e_dac_row_pj,
            self.e_adc_col_pj,
            self.e_shift_add_pj,
            self.e_buffer_read_pj,
            self.e_buffer_write_pj,
            self.e_index_lookup_pj,
            self.e_joint_add_pj,
            self.e_cell_write_pj,
        ]
        .iter()
        .all(|v| v.is_finite() && *v >= 0.0)
    }
}

impl Default for HardwareLut {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        assert!(HardwareLut::literature().is_sane());
        assert!(HardwareLut::calibrated().is_sane());
        assert!(HardwareLut::default().is_sane());
    }

    #[test]
    fn scaling_scales() {
        let base = HardwareLut::literature();
        let s = base.scaled(2.0, 3.0);
        assert!((s.t_xbar_round_ns - 2.0 * base.t_xbar_round_ns).abs() < 1e-12);
        assert!((s.e_adc_col_pj - 3.0 * base.e_adc_col_pj).abs() < 1e-12);
        assert!(s.is_sane());
    }

    #[test]
    fn insane_detected() {
        let mut l = HardwareLut::literature();
        l.e_cell_pj = -1.0;
        assert!(!l.is_sane());
        l.e_cell_pj = f64::NAN;
        assert!(!l.is_sane());
    }
}
