//! Property-based tests for the PIM simulator invariants (DESIGN.md §5).

use epim_core::{ConvShape, Epitome, EpitomeShape, EpitomeSpec, MappedMatrix};
use epim_pim::datapath::{AnalogModel, DataPath, DataPathStats};
use epim_pim::{AcceleratorConfig, CostModel, Mapping, Precision};
use epim_tensor::ops::{conv2d, Conv2dCfg};
use epim_tensor::{init, rng};
use proptest::prelude::*;

fn shape_pair() -> impl Strategy<Value = (ConvShape, EpitomeShape)> {
    (1usize..=12, 1usize..=12, 1usize..=3, 1usize..=3)
        .prop_map(|(cout, cin, kh, kw)| ConvShape::new(cout, cin, kh, kw))
        .prop_flat_map(|conv| {
            (
                1usize..=conv.cout,
                1usize..=conv.cin,
                1usize..=conv.kh,
                1usize..=conv.kw,
            )
                .prop_map(move |(a, b, c, d)| (conv, EpitomeShape::new(a, b, c, d)))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Functional equivalence, the paper's implicit correctness condition:
    /// epitome-on-crossbars == conv2d(reconstructed weight), with and
    /// without channel wrapping, on random shapes and inputs.
    #[test]
    fn datapath_equals_reconstructed_conv(
        (conv, eshape) in shape_pair(),
        seed in 0u64..10_000,
        stride in 1usize..=2,
        padding in 0usize..=1,
        wrapping in any::<bool>(),
    ) {
        let cfg = Conv2dCfg { stride, padding };
        let spec = EpitomeSpec::new(conv, eshape).unwrap();
        let mut r = rng::seeded(seed);
        let data = init::uniform(&eshape.dims(), -1.0, 1.0, &mut r);
        let epi = Epitome::from_tensor(spec, data).unwrap();
        let x = init::uniform(&[1, conv.cin, 6, 6], -1.0, 1.0, &mut r);
        let w = epi.reconstruct().unwrap();
        let want = conv2d(&x, &w, None, cfg).unwrap();
        let dp = DataPath::new(&epi, cfg, wrapping).unwrap();
        let (got, stats) = dp.execute(&x).unwrap();
        prop_assert!(got.allclose(&want, 2e-3).unwrap(),
            "mse {}", got.mse(&want).unwrap());
        prop_assert!(stats.rounds >= 1);
        prop_assert_eq!(
            stats.buffer_writes >= stats.joint_adds,
            true
        );
    }

    /// Mapping invariants: crossbars = tiles product, utilization in (0,1],
    /// and monotonicity in weight bits.
    #[test]
    fn mapping_invariants(rows in 1usize..5000, cols in 1usize..2000, bits in 1u8..=32) {
        let xb = epim_pim::CrossbarConfig::default();
        let m = Mapping::new(MappedMatrix::new(rows, cols), xb, Precision::new(bits, 9)).unwrap();
        prop_assert_eq!(m.crossbars, m.row_tiles * m.col_tiles);
        prop_assert!(m.utilization > 0.0 && m.utilization <= 1.0 + 1e-12);
        if bits < 32 {
            let m2 = Mapping::new(
                MappedMatrix::new(rows, cols), xb, Precision::new(bits + 1, 9)).unwrap();
            prop_assert!(m2.crossbars >= m.crossbars);
        }
    }

    /// Cost-model sanity: all outputs finite and positive; latency and
    /// energy strictly increase with pixel count; wrapping never increases
    /// either.
    #[test]
    fn cost_model_monotonicity(
        (conv, eshape) in shape_pair(),
        pixels in 1usize..500,
        wb in 1u8..=16,
        ab in 1u8..=16,
    ) {
        let spec = EpitomeSpec::new(conv, eshape).unwrap();
        let prec = Precision::new(wb, ab);
        let base = CostModel::new(AcceleratorConfig::default());
        let wrap = CostModel::new(AcceleratorConfig::default().with_channel_wrapping(true));
        let a = base.epitome_layer(&spec, pixels, prec);
        let b = base.epitome_layer(&spec, pixels * 2, prec);
        prop_assert!(a.latency_ns.is_finite() && a.latency_ns > 0.0);
        prop_assert!(a.energy_pj.is_finite() && a.energy_pj > 0.0);
        prop_assert!(b.latency_ns > a.latency_ns);
        prop_assert!(b.energy_pj > a.energy_pj);
        let w = wrap.epitome_layer(&spec, pixels, prec);
        prop_assert!(w.latency_ns <= a.latency_ns + 1e-9);
        prop_assert!(w.energy_pj <= a.energy_pj + 1e-9);
        prop_assert!(w.buffer_writes <= a.buffer_writes);
        prop_assert_eq!(w.crossbars, a.crossbars);
        // EDP identity.
        prop_assert!((a.edp() - a.latency_ns * a.energy_pj).abs() < 1e-6 * a.edp().max(1.0));
    }

    /// The epitome never maps to more crossbars than its convolution.
    #[test]
    fn epitome_crossbars_bounded((conv, eshape) in shape_pair(), wb in 1u8..=16) {
        let xb = epim_pim::CrossbarConfig::default();
        let prec = Precision::new(wb, 9);
        let mc = Mapping::new(MappedMatrix::from_conv(conv), xb, prec).unwrap();
        let me = Mapping::new(MappedMatrix::from_epitome(eshape), xb, prec).unwrap();
        prop_assert!(me.crossbars <= mc.crossbars);
    }

    /// The batched data path is a pure restructuring: on random odd shapes,
    /// strides, paddings, analog models and batch sizes, `execute_batch`
    /// must be **bit-identical** to the seed's per-pixel reference loop,
    /// with stats equal to the sum of per-request runs.
    #[test]
    fn execute_batch_bit_exact_vs_reference(
        (conv, eshape) in shape_pair(),
        seed in 0u64..10_000,
        stride in 1usize..=2,
        padding in 0usize..=1,
        wrapping in any::<bool>(),
        batch in 1usize..=4,
        imgs in 1usize..=2,
        quantized in any::<bool>(),
    ) {
        let cfg = Conv2dCfg { stride, padding };
        let spec = EpitomeSpec::new(conv, eshape).unwrap();
        let mut r = rng::seeded(seed);
        let data = init::uniform(&eshape.dims(), -1.0, 1.0, &mut r);
        let epi = Epitome::from_tensor(spec, data).unwrap();
        let analog = if quantized {
            AnalogModel { adc_bits: Some(8), dac_bits: Some(9), ..AnalogModel::ideal() }
        } else {
            AnalogModel::ideal()
        };
        let dp = DataPath::with_analog(&epi, cfg, wrapping, analog).unwrap();
        let xs: Vec<_> = (0..batch)
            .map(|_| init::uniform(&[imgs, conv.cin, 5, 6], -1.0, 1.0, &mut r))
            .collect();
        let refs: Vec<&_> = xs.iter().collect();
        let (batched, batch_stats) = dp.execute_batch(&refs).unwrap();
        let mut want_stats = DataPathStats::default();
        for (x, got) in xs.iter().zip(&batched) {
            let (want, s) = dp.execute_reference(x).unwrap();
            prop_assert_eq!(got, &want, "batched output diverged bitwise");
            want_stats.accumulate(&s);
        }
        prop_assert_eq!(batch_stats, want_stats);
    }
}
