//! Observability demo: serve a traced burst, export chrome://tracing JSON
//! and a Prometheus text exposition.
//!
//! Registers two tenants of the zoo's tiny epitome ResNet behind one
//! `MultiEngine`, enables the process-wide trace ring, serves a burst of
//! eight requests per tenant from concurrent clients, then:
//!
//! - writes `trace.json` (open in `chrome://tracing` or Perfetto: one
//!   lane per scheduler/pool worker, tenant-colored coalesce/group/stage
//!   spans, DAC/ADC sweep events from inside the data path),
//! - re-parses the trace through the vendored `serde_json` and validates
//!   its shape,
//! - prints the per-tenant stage rollups and latency quantiles, and the
//!   full Prometheus exposition from `MultiEngine::render_prometheus`.
//!
//! Run with: `cargo run --release -p epim --example serve_traced`
//! Knobs: `EPIM_THREADS` pins the worker pool width; `EPIM_TRACE=1`
//! enables tracing at startup (this example enables it explicitly).

use epim::models::lower::NetworkWeights;
use epim::models::zoo;
use epim::obs::{self, SpanKind};
use epim::pim::datapath::AnalogModel;
use epim::runtime::{MultiEngine, PlanCache, TenantConfig};
use epim::tensor::{init, rng, Tensor};
use std::time::Duration;

const BURST: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (net, _spec) = zoo::tiny_epitome_network(8, 8, 10)?;
    let weights_a = NetworkWeights::random(&net, 7)?;
    let weights_b = NetworkWeights::random(&net, 8)?;
    let analog = AnalogModel {
        adc_bits: Some(8),
        dac_bits: Some(9),
        ..AnalogModel::ideal()
    };

    let cache = PlanCache::new();
    let tenant_cfg = TenantConfig {
        max_batch: 4,
        batch_window: Duration::from_micros(500),
        ..TenantConfig::default()
    };
    let mut builder = MultiEngine::builder(&cache).workers(2);
    let alpha = builder.register(
        "alpha",
        &net,
        &weights_a,
        (16, 16),
        true,
        analog,
        tenant_cfg,
    )?;
    let beta = builder.register("beta", &net, &weights_b, (16, 16), true, analog, tenant_cfg)?;
    let engine = builder.build()?;

    // Everything from here on lands in the process-wide trace ring.
    obs::set_enabled(true);
    obs::global().clear();

    let mut r = rng::seeded(9);
    let mut gen = |n: usize| -> Vec<Tensor> {
        (0..n)
            .map(|_| init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r))
            .collect()
    };
    let reqs_a = gen(BURST);
    let reqs_b = gen(BURST);
    std::thread::scope(|scope| {
        let ea = &engine;
        let ha = scope.spawn(move || ea.infer_many(alpha, reqs_a).expect("alpha burst"));
        let hb = scope.spawn(move || ea.infer_many(beta, reqs_b).expect("beta burst"));
        for res in ha.join().expect("alpha clients") {
            res.expect("alpha inference succeeds");
        }
        for res in hb.join().expect("beta clients") {
            res.expect("beta inference succeeds");
        }
    });
    obs::set_enabled(false);

    // --- Chrome trace export -------------------------------------------
    let json = obs::global().export_chrome_trace();
    std::fs::write("trace.json", &json)?;
    let events = obs::global().all_events();
    let lanes: std::collections::BTreeSet<usize> = events.iter().map(|e| e.lane).collect();
    let stage_spans = events.iter().filter(|e| e.kind == SpanKind::Stage).count();
    let sweeps = events
        .iter()
        .filter(|e| matches!(e.kind, SpanKind::DacSweep | SpanKind::AdcSweep))
        .count();
    println!(
        "trace.json: {} bytes, {} events across {} worker lanes \
         ({stage_spans} stage spans, {sweeps} DAC/ADC sweep events)",
        json.len(),
        events.len(),
        lanes.len(),
    );
    assert!(stage_spans > 0, "stage spans must be traced");
    assert!(
        lanes.len() >= 2,
        "scheduler workers must occupy distinct lanes"
    );

    // Round-trip the export through the vendored serde_json and check the
    // chrome trace-event shape.
    let doc: serde::Value = serde_json::from_str(&json)?;
    let serde::Value::Object(fields) = &doc else {
        panic!("chrome trace must be a JSON object");
    };
    let (_, trace_events) = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .expect("traceEvents present");
    let serde::Value::Array(arr) = trace_events else {
        panic!("traceEvents must be an array");
    };
    println!(
        "chrome trace validates: {} traceEvents round-tripped",
        arr.len()
    );

    // --- Per-tenant metrics --------------------------------------------
    for (name, id) in [("alpha", alpha), ("beta", beta)] {
        let s = engine.tenant_stats(id)?;
        println!(
            "\n{name}: {} requests in {} batches (mean {:.2}), queue high-water {}, \
             time-in-queue {:.3} ms",
            s.requests,
            s.batches,
            s.mean_batch_size(),
            s.queue_depth_high_water,
            s.time_in_queue().as_secs_f64() * 1e3,
        );
        println!(
            "  latency us  p50 / p99:  wait {} / {}   service {} / {}   e2e {} / {}",
            s.queue_wait.quantile(0.5) / 1000,
            s.queue_wait.quantile(0.99) / 1000,
            s.service.quantile(0.5) / 1000,
            s.service.quantile(0.99) / 1000,
            s.e2e.quantile(0.5) / 1000,
            s.e2e.quantile(0.99) / 1000,
        );
        println!("  {:<36} {:>6} {:>12}", "stage", "calls", "total us");
        for stage in &s.stages {
            println!(
                "  {:<36} {:>6} {:>12.1}",
                format!("{} ({})", stage.name, stage.op),
                stage.calls,
                stage.total_ns as f64 / 1e3,
            );
        }
    }

    // --- Prometheus exposition -----------------------------------------
    let exposition = engine.render_prometheus();
    println!(
        "\n--- Prometheus exposition ({} lines) ---",
        exposition.lines().count()
    );
    print!("{exposition}");
    assert!(exposition.contains("epim_requests_total{tenant=\"alpha\"}"));
    assert!(exposition.contains("epim_request_seconds_bucket"));
    Ok(())
}
