//! Whole-network serving demo: lower → plan → serve.
//!
//! Builds a small ResNet-style network with two of its convolutions
//! replaced by a shared epitome, lowers it to an executable program,
//! compiles a serving plan against a pre-warmed plan cache (zero misses),
//! and serves a concurrent client fleet through the pipelined
//! `NetworkEngine` — verifying along the way that the served outputs are
//! bit-identical to sequential per-stage reference execution, and showing
//! the `Shed` flow-control policy rejecting traffic when the bounded
//! queue is full.
//!
//! Run with: `cargo run --release -p epim --example serve_network`
//! Knobs: `EPIM_THREADS` pins the worker pool width.

use epim::models::lower::NetworkWeights;
use epim::models::zoo;
use epim::pim::datapath::AnalogModel;
use epim::runtime::{EngineConfig, FlowControl, NetworkEngine, PlanCache, RuntimeError};
use epim::tensor::{init, rng, Tensor};
use std::time::{Duration, Instant};

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The zoo's tiny ResNet (stem 8, inner width 8, 10 classes) has both
    // 3x3 convolutions replaced by one shared epitome spec — the repeat
    // is what makes the plan cache pay off across layers.
    let (net, _spec) = zoo::tiny_epitome_network(8, 8, 10)?;
    let weights = NetworkWeights::random(&net, 7)?;
    let analog = AnalogModel {
        adc_bits: Some(8),
        dac_bits: Some(9),
        ..AnalogModel::ideal()
    };

    // Lower: Network -> executable program.
    let program = net.lower(16, 16)?;
    println!(
        "lowered {}: {} stages ({} epitome), input {:?} -> output {:?}",
        net.backbone().name,
        program.stages().len(),
        program.epitome_specs().len(),
        program.input_shape(),
        program.output_shape(),
    );

    // Plan: warm the cache, then compile (zero additional misses).
    let cache = PlanCache::new();
    cache.warm_network(&net)?;
    println!("plan cache after warm_network: {:?}", cache.stats());
    let engine = NetworkEngine::new(
        &cache,
        &net,
        &weights,
        (16, 16),
        true,
        analog,
        EngineConfig {
            // One slot per client: a full batch flushes without waiting
            // out the window.
            max_batch: CLIENTS,
            batch_window: Duration::from_micros(500),
            ..EngineConfig::default()
        },
    )?;
    println!(
        "plan cache after compile:      {:?} (warm path: no new misses)",
        cache.stats()
    );

    // Serve: concurrent clients through the pipelined engine.
    let mut r = rng::seeded(9);
    let inputs: Vec<Tensor> = (0..CLIENTS * REQUESTS_PER_CLIENT)
        .map(|_| init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r))
        .collect();

    // Baseline: sequential per-stage reference execution.
    let t0 = Instant::now();
    let reference: Vec<Tensor> = inputs
        .iter()
        .map(|x| {
            program
                .forward_reference(&weights, true, analog, x)
                .map(|(y, _)| y)
        })
        .collect::<Result<_, _>>()?;
    let sequential = t0.elapsed();

    let t0 = Instant::now();
    let served: Vec<Tensor> = std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .chunks(REQUESTS_PER_CLIENT)
            .map(|chunk| {
                let engine = &engine;
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|x| engine.infer(x.clone()).expect("inference succeeds").output)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let pipelined = t0.elapsed();

    let exact = served.iter().zip(&reference).all(|(a, b)| a == b);
    println!("\nserved == sequential reference, bitwise: {exact}");
    assert!(exact, "pipelined serving must be bit-identical");

    let stats = engine.stats();
    let n = inputs.len() as f64;
    println!("requests:             {}", stats.requests);
    println!(
        "batches executed:     {} (mean size {:.2})",
        stats.batches,
        stats.mean_batch_size()
    );
    println!("batch-size histogram: {:?}", stats.batch_histogram);
    println!(
        "request latency:      p50 {} us, p99 {} us",
        stats.p50_latency_us, stats.p99_latency_us
    );
    println!(
        "datapath counters:    {} rounds, {} word-line activations",
        stats.datapath.rounds, stats.datapath.word_line_activations
    );
    println!(
        "queue depth now:      {}, shed so far: {}",
        stats.queue_depth, stats.shed
    );
    println!(
        "throughput:           sequential {:.0} req/s, served {:.0} req/s ({:.2}x)",
        n / sequential.as_secs_f64(),
        n / pipelined.as_secs_f64(),
        sequential.as_secs_f64() / pipelined.as_secs_f64()
    );

    // Flow control: a tiny bounded queue with a Shed policy rejects
    // instead of hanging when clients outrun the network.
    let shed_engine = NetworkEngine::new(
        &cache,
        &net,
        &weights,
        (16, 16),
        true,
        analog,
        EngineConfig {
            max_batch: 4,
            batch_window: Duration::from_millis(100),
            queue_capacity: 2,
            flow: FlowControl::Shed {
                timeout: Duration::ZERO,
            },
            workers: 1,
            optimize_program: true,
            ..EngineConfig::default()
        },
    )?;
    let mut accepted = 0usize;
    let mut shed = 0usize;
    let mut pending = Vec::new();
    for x in inputs.iter().take(8) {
        match shed_engine.try_infer(x.clone()) {
            Ok(p) => {
                accepted += 1;
                pending.push(p);
            }
            Err(RuntimeError::Overloaded { .. }) => shed += 1,
            Err(e) => return Err(e.into()),
        }
    }
    for p in pending {
        let _ = p.wait();
    }
    println!(
        "\nshed demo (queue_capacity 2): accepted {accepted}, shed {shed} \
         (engine counter: {})",
        shed_engine.stats().shed
    );
    Ok(())
}
