//! Layer-wise epitome design with evolutionary search (paper §5.2,
//! Algorithm 1): optimize per-layer epitome shapes for latency or energy
//! under a crossbar budget, and compare against the uniform design.
//!
//! Run with: `cargo run -p epim --example design_search --release`

use epim::core::EpitomeDesigner;
use epim::models::resnet::resnet50;
use epim::pim::{AcceleratorConfig, CostModel, Precision};
use epim::search::{random_search, EvoSearch, Objective, SearchConfig, SearchLayer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let designer = EpitomeDesigner::new(128, 128);
    let model = CostModel::new(AcceleratorConfig::default().with_channel_wrapping(true));
    let precision = Precision::new(9, 9);

    // Build the per-layer candidate sets for a slice of ResNet-50 (the
    // 3x3 convolutions of stages 2-4 — the layers worth compressing).
    let backbone = resnet50();
    let layers: Vec<SearchLayer> = backbone
        .layers
        .iter()
        .filter(|l| l.conv.kh == 3 && l.conv.cin >= 128)
        .map(|l| {
            Ok(SearchLayer {
                conv: l.conv,
                out_pixels: l.out_pixels(),
                candidates: designer.candidates(l.conv)?,
            })
        })
        .collect::<Result<_, epim::core::EpitomeError>>()?;
    println!("search problem: {} layers", layers.len());

    // A uniform reference design: pick the mid-ladder candidate everywhere.
    let uniform_genome: Vec<usize> = layers.iter().map(|l| l.candidates.len() / 2).collect();

    for objective in [Objective::Latency, Objective::Energy, Objective::Edp] {
        let cfg = SearchConfig {
            population: 32,
            iterations: 40,
            objective,
            crossbar_budget: usize::MAX,
            seed: 7,
            ..SearchConfig::default()
        };
        let search = EvoSearch::new(layers.clone(), model, precision, cfg)?;
        if matches!(objective, Objective::Latency) {
            println!("design space: {} combinations", search.design_space());
            let (u_costs, _) = search.evaluate(&uniform_genome);
            println!(
                "uniform reference: latency {:.2} ms, energy {:.2} mJ, {} crossbars\n",
                u_costs.latency_ms(),
                u_costs.energy_mj(),
                u_costs.crossbars
            );
        }

        let (best, trace) = search.run_traced();
        let rand = random_search(&search, 32 * 40, 7);
        println!(
            "{:?}-opt: latency {:.2} ms, energy {:.2} mJ, EDP {:.1}, {} crossbars \
             (random-search best reward: {:.3e}, evolution: {:.3e}, gens to best: {})",
            objective,
            best.costs.latency_ms(),
            best.costs.energy_mj(),
            best.costs.edp() * 1e-15,
            best.costs.crossbars,
            rand.reward,
            best.reward,
            trace
                .best_rewards
                .iter()
                .position(|&r| (r - best.reward).abs() < f64::EPSILON)
                .map(|i| i + 1)
                .unwrap_or(trace.best_rewards.len())
        );
    }

    // Now with a tight crossbar budget (Eq. 7 in action).
    let free = EvoSearch::new(
        layers.clone(),
        model,
        precision,
        SearchConfig {
            iterations: 30,
            seed: 7,
            ..SearchConfig::default()
        },
    )?
    .run();
    let budget = (free.costs.crossbars as f64 * 0.8) as usize;
    let constrained = EvoSearch::new(
        layers,
        model,
        precision,
        SearchConfig {
            iterations: 40,
            seed: 7,
            crossbar_budget: budget,
            ..SearchConfig::default()
        },
    )?
    .run();
    println!(
        "\nbudget {} crossbars: best design uses {} ({} without the budget)",
        budget, constrained.costs.crossbars, free.costs.crossbars
    );
    assert!(constrained.costs.crossbars <= budget);
    Ok(())
}
