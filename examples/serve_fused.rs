//! Fused serving smoke: lower → optimize → plan → serve.
//!
//! Lowers the zoo's tiny ResNet, runs the graph-fusion pass
//! (`NetworkProgram::optimize`: ReLUs folded into conv/epitome/linear/add
//! epilogues, identity stages aliased away), plans its liveness-based
//! activation arena, and serves the same burst through a fused and an
//! unfused engine — asserting the two are **bitwise identical** in both
//! outputs and data-path counter rollups, which is the house invariant
//! the pass is built on.
//!
//! Run with: `cargo run --release -p epim --example serve_fused`
//! Knobs: `EPIM_THREADS` pins the worker pool width.

use epim::models::lower::NetworkWeights;
use epim::models::zoo;
use epim::pim::datapath::AnalogModel;
use epim::runtime::{EngineConfig, NetworkEngine, PlanCache, RuntimeStats};
use epim::tensor::{init, rng, Tensor};
use std::time::{Duration, Instant};

const BURST: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (net, _spec) = zoo::tiny_epitome_network(8, 8, 10)?;
    let weights = NetworkWeights::random(&net, 7)?;
    let analog = AnalogModel {
        adc_bits: Some(8),
        dac_bits: Some(9),
        ..AnalogModel::ideal()
    };

    // Lower, then optimize: the pass fuses epilogues and folds stages.
    let program = net.lower(16, 16)?;
    let fused = program.optimize();
    println!(
        "lowered {}: {} stages; after optimize: {} stages",
        net.backbone().name,
        program.stages().len(),
        fused.stages().len(),
    );
    for stage in fused.stages() {
        if stage.op.fused_relu() {
            println!("  fused epilogue: {}", stage.name);
        }
    }

    // Serve one burst through each engine (the fused one is the default).
    let mut r = rng::seeded(9);
    let inputs: Vec<Tensor> = (0..BURST)
        .map(|_| init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r))
        .collect();
    let serve = |optimize_program: bool| -> Result<(Vec<Tensor>, RuntimeStats, Duration), Box<dyn std::error::Error>> {
        let cache = PlanCache::new();
        cache.warm_network(&net)?;
        let engine = NetworkEngine::new(
            &cache,
            &net,
            &weights,
            (16, 16),
            true,
            analog,
            EngineConfig {
                max_batch: BURST,
                batch_window: Duration::ZERO,
                optimize_program,
                ..EngineConfig::default()
            },
        )?;
        let t0 = Instant::now();
        let outputs: Vec<Tensor> = engine
            .infer_many(inputs.clone())?
            .into_iter()
            .map(|res| res.map(|inf| inf.output))
            .collect::<Result<_, _>>()?;
        let took = t0.elapsed();
        Ok((outputs, engine.stats(), took))
    };
    let (fused_out, fused_stats, fused_took) = serve(true)?;
    let (raw_out, raw_stats, raw_took) = serve(false)?;

    let exact = fused_out == raw_out && fused_stats.datapath == raw_stats.datapath;
    println!("\nfused == unfused (outputs and stats), bitwise: {exact}");
    assert!(exact, "the graph-fusion pass must be bitwise invisible");

    let mb = |bytes: u64| bytes as f64 / (1024.0 * 1024.0);
    println!(
        "activation arena:     {:.3} MB (liveness-planned) vs {:.3} MB \
         (old exact-size pool high-water) — {:.2}x smaller",
        mb(fused_stats.arena_bytes),
        mb(fused_stats.legacy_pool_bytes),
        fused_stats.legacy_pool_bytes as f64 / fused_stats.arena_bytes as f64,
    );
    assert!(
        fused_stats.arena_bytes < fused_stats.legacy_pool_bytes,
        "the arena must stay below the old pool's high-water mark"
    );
    println!(
        "burst of {BURST}:           fused {:.2} ms, unfused {:.2} ms",
        fused_took.as_secs_f64() * 1e3,
        raw_took.as_secs_f64() * 1e3,
    );
    Ok(())
}
