//! Multi-network tenancy demo: a fleet of compressed models behind one
//! scheduler.
//!
//! Builds two distinct epitome-compressed networks from the model zoo,
//! registers them as tenants of one `MultiEngine` — a *premium* tenant
//! with drain weight 3 and a *standard* tenant with weight 1 — and
//! serves concurrent client fleets for both through the shared scheduler
//! threads and plan cache. Along the way it verifies the house
//! invariant: each tenant's outputs are bit-identical to a dedicated
//! single-tenant `NetworkEngine` serving the same requests. A final act
//! shows per-tenant flow control: the standard tenant sheds its overflow
//! while the premium tenant's `Block` traffic all completes.
//!
//! Run with: `cargo run --release -p epim --example serve_tenants`
//! Knobs: `EPIM_THREADS` pins the worker pool width.

use epim::models::lower::NetworkWeights;
use epim::models::zoo;
use epim::pim::datapath::AnalogModel;
use epim::runtime::{
    EngineConfig, FlowControl, MultiEngine, NetworkEngine, PlanCache, RuntimeError, TenantConfig,
};
use epim::tensor::{init, rng, Tensor};
use std::time::Duration;

const CLIENTS_PER_TENANT: usize = 2;
const REQUESTS_PER_CLIENT: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two structurally distinct small networks (inner widths 8 and 4),
    // each with both 3x3 convolutions epitome-compressed.
    let (premium_net, _) = zoo::tiny_epitome_network(8, 8, 10)?;
    let (standard_net, _) = zoo::tiny_epitome_network(8, 4, 10)?;
    let premium_weights = NetworkWeights::random(&premium_net, 7)?;
    let standard_weights = NetworkWeights::random(&standard_net, 8)?;
    let analog = AnalogModel {
        adc_bits: Some(8),
        dac_bits: Some(9),
        ..AnalogModel::ideal()
    };

    // One shared plan cache for the whole fleet.
    let cache = PlanCache::new();
    let tenant_cfg = TenantConfig {
        max_batch: 4,
        batch_window: Duration::from_micros(500),
        ..TenantConfig::default()
    };
    let mut builder = MultiEngine::builder(&cache).workers(2);
    let premium = builder.register(
        "premium",
        &premium_net,
        &premium_weights,
        (16, 16),
        true,
        analog,
        // Weight 3: up to three request groups per fair-drain turn.
        tenant_cfg.with_weight(3),
    )?;
    let standard = builder.register(
        "standard",
        &standard_net,
        &standard_weights,
        (16, 16),
        true,
        analog,
        tenant_cfg,
    )?;
    let engine = builder.build()?;
    println!(
        "fleet: {:?}, shared plan cache: {:?}",
        engine.tenant_names(),
        engine.fleet_stats().plan_cache
    );

    // Concurrent client fleets on both tenants.
    let mut r = rng::seeded(9);
    let mut gen = |n: usize| -> Vec<Tensor> {
        (0..n)
            .map(|_| init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r))
            .collect()
    };
    let premium_reqs = gen(CLIENTS_PER_TENANT * REQUESTS_PER_CLIENT);
    let standard_reqs = gen(CLIENTS_PER_TENANT * REQUESTS_PER_CLIENT);

    let (premium_outs, standard_outs): (Vec<Tensor>, Vec<Tensor>) = std::thread::scope(|scope| {
        let serve = |id, reqs: &[Tensor]| {
            let engine = &engine;
            let chunks: Vec<Vec<Tensor>> = reqs
                .chunks(REQUESTS_PER_CLIENT)
                .map(<[Tensor]>::to_vec)
                .collect();
            scope.spawn(move || {
                let mut outs = Vec::new();
                for chunk in chunks {
                    for res in engine.infer_many(id, chunk).expect("burst accepted") {
                        outs.push(res.expect("inference succeeds").output);
                    }
                }
                outs
            })
        };
        let hp = serve(premium, &premium_reqs);
        let hs = serve(standard, &standard_reqs);
        (
            hp.join().expect("premium clients"),
            hs.join().expect("standard clients"),
        )
    });

    // House invariant: each tenant matches a dedicated engine, bit for
    // bit — tenancy is a resource-sharing decision, never a semantic one.
    let dedicated = |net, weights, reqs: &[Tensor]| -> Vec<Tensor> {
        let engine = NetworkEngine::new(
            &cache,
            net,
            weights,
            (16, 16),
            true,
            analog,
            EngineConfig {
                max_batch: 4,
                ..EngineConfig::default()
            },
        )
        .expect("dedicated engine builds");
        reqs.iter()
            .map(|x| engine.infer(x.clone()).expect("inference succeeds").output)
            .collect()
    };
    let premium_solo = dedicated(&premium_net, &premium_weights, &premium_reqs);
    let standard_solo = dedicated(&standard_net, &standard_weights, &standard_reqs);
    let exact = premium_outs == premium_solo && standard_outs == standard_solo;
    println!("tenants == dedicated engines, bitwise: {exact}");
    assert!(
        exact,
        "multi-tenant serving must be bit-identical per tenant"
    );

    for (name, id) in [("premium", premium), ("standard", standard)] {
        let s = engine.tenant_stats(id)?;
        println!(
            "{name:>9}: {} requests in {} batches (mean {:.2}), p50 {} us, p99 {} us, \
             {} rounds, shed {}",
            s.requests,
            s.batches,
            s.mean_batch_size(),
            s.p50_latency_us,
            s.p99_latency_us,
            s.datapath.rounds,
            s.shed,
        );
    }
    let fleet = engine.fleet_stats();
    println!(
        "{:>9}: {} requests in {} batches, {} rounds, queue depth {}, cache {:?}",
        "fleet",
        fleet.requests,
        fleet.batches,
        fleet.datapath.rounds,
        fleet.queue_depth,
        fleet.plan_cache,
    );

    // Per-tenant flow control: rebuild the fleet with a tiny shedding
    // queue for the standard tenant. Its overflow is rejected with a
    // typed, tenant-tagged error; premium Block traffic never drops.
    let mut builder = MultiEngine::builder(&cache).workers(1);
    let premium = builder.register(
        "premium",
        &premium_net,
        &premium_weights,
        (16, 16),
        true,
        analog,
        tenant_cfg.with_weight(3),
    )?;
    let standard = builder.register(
        "standard",
        &standard_net,
        &standard_weights,
        (16, 16),
        true,
        analog,
        TenantConfig {
            max_batch: 4,
            batch_window: Duration::from_millis(50),
            queue_capacity: 2,
            flow: FlowControl::Shed {
                timeout: Duration::ZERO,
            },
            weight: 1,
        },
    )?;
    let engine = builder.build()?;
    let mut accepted = 0usize;
    let mut shed = 0usize;
    let mut pending = Vec::new();
    for x in standard_reqs.iter().take(8) {
        match engine.try_infer(standard, x.clone()) {
            Ok(p) => {
                accepted += 1;
                pending.push(p);
            }
            Err(RuntimeError::Overloaded { tenant, .. }) => {
                assert_eq!(tenant.as_deref(), Some("standard"));
                shed += 1;
            }
            Err(e) => return Err(e.into()),
        }
    }
    // Premium requests ride through untouched while standard sheds.
    for x in premium_reqs.iter().take(4) {
        engine.infer(premium, x.clone())?;
    }
    for p in pending {
        let _ = p.wait();
    }
    println!(
        "\nshed demo (standard queue_capacity 2): accepted {accepted}, shed {shed} \
         (standard counter: {}, premium counter: {})",
        engine.tenant_stats(standard)?.shed,
        engine.tenant_stats(premium)?.shed,
    );
    assert_eq!(engine.tenant_stats(premium)?.shed, 0);
    Ok(())
}
