//! Quickstart: replace one convolution with an epitome, verify the
//! reconstruction end-to-end on the simulated PIM data path, and compare
//! hardware costs.
//!
//! Run with: `cargo run -p epim --example quickstart`

use epim::core::{ConvShape, Epitome, EpitomeDesigner};
use epim::pim::datapath::DataPath;
use epim::pim::{AcceleratorConfig, CostModel, Precision};
use epim::tensor::ops::{conv2d, Conv2dCfg};
use epim::tensor::{init, rng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A ResNet-50-style convolution: 512 output channels, 256 input
    //    channels, 3x3 kernel.
    let conv = ConvShape::new(512, 256, 3, 3);
    println!("convolution:            {conv}  ({} params)", conv.params());

    // 2. Design the paper's uniform 1024x256 epitome for it, aligned to
    //    128x128 crossbars (paper §4.1).
    let designer = EpitomeDesigner::new(128, 128);
    let spec = designer.design(conv, 1024, 256)?;
    println!(
        "epitome:                {}  ({} params, {:.2}x compression)",
        spec.shape(),
        spec.shape().params(),
        spec.param_compression()
    );
    println!(
        "sampling plan:          {} patches per output pixel",
        spec.plan().activation_rounds()
    );

    // 3. Put random parameters in the epitome and reconstruct the full
    //    convolution weight (paper Eq. 1 / Figure 1).
    let mut r = rng::seeded(42);
    let data = init::kaiming_normal(&spec.shape().dims(), &mut r);
    let epitome = Epitome::from_tensor(spec.clone(), data)?;
    let weight = epitome.reconstruct()?;
    println!("reconstructed weight:   {:?}", weight.shape());

    // 4. Run a feature map through the EPIM data path (IFAT/IFRT/OFAT +
    //    joint module, §4.3) and check it matches a plain convolution.
    let cfg = Conv2dCfg {
        stride: 1,
        padding: 1,
    };
    let x = init::uniform(&[1, 256, 7, 7], -1.0, 1.0, &mut r);
    let datapath = DataPath::new(&epitome, cfg, true)?;
    let (y_pim, stats) = datapath.execute(&x)?;
    let y_ref = conv2d(&x, &weight, None, cfg)?;
    println!(
        "functional equivalence: max|Δ| = {:.2e}  (rounds: {}, wrapped outputs: {})",
        y_pim.sub(&y_ref)?.abs_max(),
        stats.rounds,
        stats.wrapped_elements
    );
    assert!(
        y_pim.allclose(&y_ref, 1e-3)?,
        "data path must match the convolution"
    );

    // 5. Compare analytic hardware costs at W9A9.
    let prec = Precision::new(9, 9);
    let pixels = 14 * 14;
    let base = CostModel::new(AcceleratorConfig::default());
    let wrap = CostModel::new(AcceleratorConfig::default().with_channel_wrapping(true));
    let c_conv = base.conv_layer(conv, pixels, prec);
    let c_epi = base.epitome_layer(&spec, pixels, prec);
    let c_epi_w = wrap.epitome_layer(&spec, pixels, prec);
    println!(
        "\n{:<28}{:>12}{:>14}{:>12}",
        "operator", "crossbars", "latency (ms)", "energy (mJ)"
    );
    for (name, c) in [
        ("convolution", &c_conv),
        ("epitome", &c_epi),
        ("epitome + wrapping", &c_epi_w),
    ] {
        println!(
            "{:<28}{:>12}{:>14.4}{:>12.4}",
            name,
            c.crossbars,
            c.latency_ms(),
            c.energy_mj()
        );
    }
    println!(
        "\ncrossbar savings: {:.2}x; wrapping recovers {:.1}% of the epitome's extra latency",
        c_conv.crossbars as f64 / c_epi.crossbars as f64,
        100.0 * (c_epi.latency_ns - c_epi_w.latency_ns)
            / (c_epi.latency_ns - c_conv.latency_ns).max(f64::EPSILON)
    );
    Ok(())
}
