//! Deploy ResNet-50 on the simulated PIM accelerator: baseline
//! convolutions versus the paper's uniform 1024x256 EPIM variant, across
//! the Table 1 precision ladder.
//!
//! Run with: `cargo run -p epim --example resnet50_deploy`

use epim::core::EpitomeDesigner;
use epim::models::accuracy::{AccuracyModel, QuantMethod, WeightScheme};
use epim::models::network::Network;
use epim::models::resnet::resnet50;
use epim::pim::{AcceleratorConfig, CostModel, Precision};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let designer = EpitomeDesigner::new(128, 128);
    let model = CostModel::new(AcceleratorConfig::default().with_channel_wrapping(true));
    let acc = AccuracyModel::resnet50();

    let baseline = Network::baseline(resnet50());
    let epim = Network::uniform_epitome(resnet50(), &designer, 1024, 256)?;
    let cr_params = epim.param_compression();

    println!("ResNet-50 on 128x128 crossbars (2-bit cells), channel wrapping on");
    println!(
        "epitome layers: {}/{}  param compression: {:.2}x\n",
        epim.epitome_layers(),
        epim.choices().len(),
        cr_params
    );
    println!(
        "{:<24}{:>8}{:>10}{:>9}{:>14}{:>13}{:>8}",
        "variant", "bits", "top-1(%)", "#XBs", "latency (ms)", "energy (mJ)", "util%"
    );

    // FP32 baseline row.
    let base_costs = baseline.simulate(&model, Precision::fp32());
    println!(
        "{:<24}{:>8}{:>10.2}{:>9}{:>14.1}{:>13.1}{:>8.1}",
        "ResNet50 (conv)",
        "FP32",
        acc.baseline(),
        base_costs.crossbars(),
        base_costs.latency_ms(),
        base_costs.energy_mj(),
        base_costs.utilization_pct()
    );

    // EPIM rows across the precision ladder.
    let rows: &[(&str, Precision, WeightScheme)] = &[
        ("EPIM-ResNet50", Precision::fp32(), WeightScheme::Fp32),
        (
            "EPIM-ResNet50 W9A9",
            Precision::new(9, 9),
            WeightScheme::Fixed { bits: 9 },
        ),
        (
            "EPIM-ResNet50 W7A9",
            Precision::new(7, 9),
            WeightScheme::Fixed { bits: 7 },
        ),
        (
            "EPIM-ResNet50 W5A9",
            Precision::new(5, 9),
            WeightScheme::Fixed { bits: 5 },
        ),
        (
            "EPIM-ResNet50 W3A9",
            Precision::new(3, 9),
            WeightScheme::Fixed { bits: 3 },
        ),
    ];
    for (name, prec, scheme) in rows {
        let costs = epim.simulate(&model, *prec);
        let top1 = acc.epim_accuracy(cr_params, *scheme, QuantMethod::PerCrossbarOverlap);
        println!(
            "{:<24}{:>8}{:>10.2}{:>9}{:>14.1}{:>13.1}{:>8.1}",
            name,
            format!("W{}A{}", prec.weight_bits, prec.act_bits),
            top1,
            costs.crossbars(),
            costs.latency_ms(),
            costs.energy_mj(),
            costs.utilization_pct()
        );
    }

    let w3 = epim.simulate(&model, Precision::new(3, 9));
    println!(
        "\ncrossbar compression at W3A9: {:.2}x   energy reduction vs FP32 baseline: {:.2}x",
        base_costs.crossbars() as f64 / w3.crossbars() as f64,
        base_costs.energy_mj() / w3.energy_mj()
    );
    Ok(())
}
