//! Serving over TCP, end to end in one process.
//!
//! Builds the default three-tenant zoo fleet, binds the wire-protocol
//! server on an ephemeral loopback port, and drives it with pipelined
//! clients — then verifies the house invariant at the network boundary:
//! every output that came back over the wire is **bit-identical** to the
//! same request served by an in-process `MultiEngine` built from the
//! same fleet config. Finishes with a graceful drain: requests are still
//! in flight when the shutdown flag goes up, and all of them are
//! answered before the server returns.
//!
//! Run with: `cargo run --release -p epim --example serve_tcp`
//! Knobs: `EPIM_THREADS` pins the worker pool width.
//!
//! The same server is available as a standalone binary (`epim_serve`)
//! with a matching load generator (`load_gen`) — see the README's
//! "Serving over TCP" section.

use epim::serve::fleet::{FleetConfig, INPUT_SHAPE};
use epim::serve::{Client, Server};
use epim::tensor::{init, rng, Tensor};
use std::sync::atomic::Ordering;

const CLIENTS: usize = 3;
const REQUESTS_PER_CLIENT: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One fleet config, two builds: the served fleet and the in-process
    // reference. Deterministic weight seeds make them bit-identical.
    let cfg = FleetConfig::default_zoo();
    let reference = cfg.build()?;
    let server = Server::bind(cfg.build()?, "127.0.0.1:0")?;
    let addr = server.local_addr()?.to_string();
    let shutdown = server.shutdown_flag();
    let tenants: Vec<String> = cfg.tenants.iter().map(|t| t.name.clone()).collect();
    println!("serving {} tenants on {addr}", tenants.len());

    let server_thread = std::thread::spawn(move || server.serve());

    // Pipelined clients: submit the whole workload, then collect replies
    // in completion order, correlating by request id.
    let collected: Vec<(String, Tensor, Tensor)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let addr = addr.clone();
                let tenants = &tenants;
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    let mut r = rng::seeded(40 + c as u64);
                    let mut by_id = std::collections::HashMap::new();
                    for k in 0..REQUESTS_PER_CLIENT {
                        let tenant = tenants[(c + k) % tenants.len()].clone();
                        let x = init::uniform(&INPUT_SHAPE, -1.0, 1.0, &mut r);
                        let id = client.submit(&tenant, x.clone()).expect("submit");
                        by_id.insert(id, (tenant, x));
                    }
                    let mut got = Vec::new();
                    for _ in 0..REQUESTS_PER_CLIENT {
                        let resp = client.recv_reply().expect("recv").expect("no error frame");
                        let (tenant, input) = by_id.remove(&resp.id).expect("known id");
                        got.push((tenant, input, resp.output));
                    }
                    client.close().expect("orderly close");
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });

    let mut checked = 0;
    for (tenant, input, wire_out) in &collected {
        let tid = reference.tenant_id(tenant).expect("tenant");
        let want = reference.infer(tid, input.clone())?.output;
        assert_eq!(
            want.data(),
            wire_out.data(),
            "wire output diverged for tenant `{tenant}`"
        );
        checked += 1;
    }
    println!("{checked} wire outputs bit-identical to the in-process fleet");

    // Graceful drain with work still in flight: everything is answered.
    let mut client = Client::connect(&addr)?;
    let mut r = rng::seeded(99);
    for _ in 0..4 {
        let x = init::uniform(&INPUT_SHAPE, -1.0, 1.0, &mut r);
        client.submit(&tenants[0], x)?;
    }
    // Let the submissions land in the scheduler before pulling the plug
    // — drain answers what is in flight, not what is still unread.
    std::thread::sleep(std::time::Duration::from_millis(100));
    shutdown.store(true, Ordering::SeqCst);
    for _ in 0..4 {
        let resp = client.recv_reply()?.expect("drain answers in-flight");
        assert!(resp.batch_size >= 1);
    }
    let report = server_thread.join().expect("server thread")?;
    println!(
        "drained cleanly: {} connections, {} requests, {} error frames",
        report.connections, report.requests, report.error_frames
    );
    Ok(())
}
