//! Serving-throughput demo: the `epim-runtime` engine coalescing
//! concurrent inference requests into batched data-path executions.
//!
//! Spawns a small client fleet hammering one epitome layer, then compares
//! the engine's batched throughput against naive per-request execution and
//! prints the serving statistics (batch histogram, p50/p99 latency, plan
//! cache behavior).
//!
//! Run with: `cargo run --release -p epim --example serve_throughput`
//! Knobs: `EPIM_THREADS` pins the worker pool width.

use epim::core::{ConvShape, Epitome, EpitomeShape, EpitomeSpec};
use epim::pim::datapath::AnalogModel;
use epim::runtime::{Engine, EngineConfig, PlanCache};
use epim::tensor::ops::Conv2dCfg;
use epim::tensor::{init, rng, Tensor};
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 16;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-network layer compressed 4x: 32x16x3x3 conv served from a
    // 16x8x2x2 epitome, with the paper's W-noise-free A9/ADC8 readout.
    let spec = EpitomeSpec::new(ConvShape::new(32, 16, 3, 3), EpitomeShape::new(16, 8, 2, 2))?;
    let mut r = rng::seeded(7);
    let epi = Epitome::from_tensor(spec, init::kaiming_normal(&[16, 8, 2, 2], &mut r))?;
    let cfg = Conv2dCfg {
        stride: 1,
        padding: 1,
    };
    let analog = AnalogModel {
        adc_bits: Some(8),
        dac_bits: Some(9),
        ..AnalogModel::ideal()
    };

    let cache = PlanCache::new();
    let engine = Engine::with_cache(
        &cache,
        &epi,
        cfg,
        true,
        analog,
        EngineConfig {
            max_batch: 16,
            batch_window: Duration::from_micros(500),
            ..EngineConfig::default()
        },
    )?;
    println!(
        "engine up: {} worker threads, plan cache {:?}",
        epim::tensor::ops::gemm::num_threads_in_use(),
        cache.stats()
    );

    // Client traffic: CLIENTS threads, each sending a stream of CIFAR-ish
    // feature maps. All requests share one shape, so they coalesce.
    let inputs: Vec<Tensor> = (0..CLIENTS * REQUESTS_PER_CLIENT)
        .map(|_| init::uniform(&[1, 16, 16, 16], -1.0, 1.0, &mut r))
        .collect();

    // Baseline: per-request execution on the same data path, no batching.
    let t0 = Instant::now();
    for x in &inputs {
        engine.datapath().execute(x)?;
    }
    let per_request = t0.elapsed();

    // Served: concurrent clients through the micro-batcher.
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let engine = &engine;
            let chunk = &inputs[client * REQUESTS_PER_CLIENT..(client + 1) * REQUESTS_PER_CLIENT];
            scope.spawn(move || {
                for x in chunk {
                    engine.infer(x.clone()).expect("inference succeeds");
                }
            });
        }
    });
    let served = t0.elapsed();

    let stats = engine.stats();
    let n = inputs.len() as f64;
    println!("\nrequests:               {}", stats.requests);
    println!(
        "batches executed:       {} (mean size {:.2})",
        stats.batches,
        stats.mean_batch_size()
    );
    println!("batch-size histogram:   {:?}", stats.batch_histogram);
    println!(
        "request latency:        p50 {} us, p99 {} us",
        stats.p50_latency_us, stats.p99_latency_us
    );
    println!(
        "datapath counters:      {} rounds, {} word-line activations",
        stats.datapath.rounds, stats.datapath.word_line_activations
    );
    println!(
        "\nthroughput:             per-request {:.0} req/s, served {:.0} req/s ({:.2}x)",
        n / per_request.as_secs_f64(),
        n / served.as_secs_f64(),
        per_request.as_secs_f64() / served.as_secs_f64()
    );

    // The plan cache makes rebuilding an engine for the same spec cheap —
    // e.g. re-programming weights after a training step.
    let epi2 = Epitome::from_tensor(
        epi.spec().clone(),
        init::kaiming_normal(&[16, 8, 2, 2], &mut r),
    )?;
    let _hot = Engine::with_cache(&cache, &epi2, cfg, true, analog, EngineConfig::default())?;
    println!("plan cache after reuse: {:?}", cache.stats());
    Ok(())
}
