//! The §4.2 quantization pipeline on a real epitome: naive per-tensor
//! min/max versus per-crossbar scaling factors versus overlap-weighted
//! ranges (Eq. 4–5), plus HAWQ-style mixed precision, plus the genuine
//! small-scale training experiment.
//!
//! Run with: `cargo run -p epim --example quantize_epitome --release`

use epim::core::{ConvShape, Epitome, EpitomeDesigner};
use epim::models::training::{run_small_scale_experiment, SmallScaleConfig};
use epim::quant::{
    quantize_epitome, sensitivity_proxy, MixedPrecision, QuantGranularity, RangeEstimator,
};
use epim::tensor::{init, rng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An epitome for a mid-network ResNet layer.
    let designer = EpitomeDesigner::new(128, 128);
    let spec = designer.design(ConvShape::new(512, 256, 3, 3), 1024, 256)?;
    let mut r = rng::seeded(1);
    let data = init::kaiming_normal(&spec.shape().dims(), &mut r);
    let epitome = Epitome::from_tensor(spec, data)?;

    println!(
        "3-bit quantization of a {} epitome:",
        epitome.spec().shape()
    );
    println!(
        "{:<40}{:>10}{:>14}{:>12}",
        "method", "groups", "weight MSE", "SQNR (dB)"
    );
    let xbar = QuantGranularity::PerCrossbar {
        rows: 128,
        cols: 128,
    };
    let runs = [
        (
            "naive (per-tensor min/max)",
            QuantGranularity::PerTensor,
            RangeEstimator::MinMax,
        ),
        ("+ per-crossbar scales", xbar, RangeEstimator::MinMax),
        (
            "+ overlap-weighted range (Eq. 4-5)",
            xbar,
            RangeEstimator::overlap_default(),
        ),
    ];
    for (name, gran, range) in runs {
        let (_, report) = quantize_epitome(&epitome, 3, gran, &range)?;
        println!(
            "{:<40}{:>10}{:>14.6}{:>12.2}",
            name, report.groups, report.mse, report.sqnr_db
        );
    }

    // Mixed precision: allocate 3/5 bits across a few layers by the
    // sensitivity proxy (HAWQ's role in the paper's W3mp rows).
    println!("\nmixed-precision allocation (budget: 3.5 avg bits):");
    let convs = [
        ConvShape::new(256, 64, 3, 3),
        ConvShape::new(512, 128, 3, 3),
        ConvShape::new(1024, 256, 3, 3),
        ConvShape::new(2048, 512, 3, 3),
    ];
    let mut sens = Vec::new();
    let mut sizes = Vec::new();
    let mut epis = Vec::new();
    for (i, conv) in convs.iter().enumerate() {
        let spec = designer.design(*conv, conv.matrix_rows() / 2, conv.cout / 2)?;
        let mut r = rng::seeded(i as u64 + 10);
        let e = Epitome::from_tensor(
            spec.clone(),
            init::kaiming_normal(&spec.shape().dims(), &mut r),
        )?;
        sens.push(sensitivity_proxy(&e, 3)?);
        sizes.push(spec.shape().params());
        epis.push(e);
    }
    let alloc = MixedPrecision::w3mp().allocate(&sens, &sizes)?;
    for (i, conv) in convs.iter().enumerate() {
        println!(
            "  layer {i} ({conv}): sensitivity {:>12.1}, {} params -> {} bits",
            sens[i], sizes[i], alloc.bits[i]
        );
    }
    println!("  parameter-weighted average: {:.2} bits", alloc.avg_bits);

    // The genuine small-scale training experiment (ImageNet substitute).
    println!("\nsmall-scale training experiment (synthetic data, real SGD):");
    let results = run_small_scale_experiment(&SmallScaleConfig::default());
    println!(
        "  conv CNN accuracy:                 {:.1}%",
        100.0 * results.conv_acc
    );
    println!(
        "  epitome CNN ({:.1}x params) accuracy: {:.1}%",
        results.param_compression,
        100.0 * results.epitome_acc
    );
    println!(
        "  epitome + naive 3-bit QAT:         {:.1}%",
        100.0 * results.epitome_naive_quant_acc
    );
    println!(
        "  epitome + overlap-aware 3-bit QAT: {:.1}%",
        100.0 * results.epitome_overlap_quant_acc
    );
    Ok(())
}
